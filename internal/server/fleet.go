package server

import (
	"context"
	"fmt"
	"math/rand"
	"net/http"
	"os"
	"time"

	"repro/internal/faultinject"
	"repro/internal/retryhttp"
	"repro/internal/serial"
)

// Fleet mode: N vlpserved processes share one snapshot directory, with
// the store's lease protocol electing a single durable writer. The
// leader behaves like a solo server (solves, checkpoints, persists —
// every commit fenced by its lease token). Followers never cold-solve:
// a miss is answered read-through from the store, by proxying the solve
// to the leader, or from the exponential-fallback rung — so follower
// capacity is pure serving capacity, and the solver's CPU budget lives
// on exactly one process. Every mechanism a follower serves still
// passes the EnforceGeoI repair gate locally (entryFromStore,
// fallbackEntry); fleet membership never weakens the Geo-I guarantee.
//
// Failover: the lease loop renews at Poll cadence; when the leader dies
// its lease expires within TTL and the first follower tick thereafter
// wins the election, bumps the fencing token, and re-enqueues the dead
// leader's interrupted solves from their durable checkpoints
// (recoverFromStore). A demoted leader discovers the loss at its next
// renew (or its next commit, which the stale fence rejects), abandons
// checkpointing cleanly, and keeps serving as a follower.

// Server lease states reported as /stats lease_state.
const (
	leaseSolo int32 = iota // no fleet configured
	leaseFollower
	leaseLeader
)

// refreshLoadCap bounds how many delta entries one refresh tick pulls
// into the local cache, keeping the lease loop's latency flat while a
// large store converges over several ticks.
const refreshLoadCap = 8

// FaultSiteFleetProxy sits immediately before the follower→leader
// proxy POST: arming it blackholes the proxy rung of a real follower
// process without any network machinery, which is how the chaos
// harness forces the circuit breaker open.
const FaultSiteFleetProxy = "server/fleet/proxy"

// FleetConfig configures fleet membership (Config.Fleet). The store in
// Config.Store must be opened with store.OpenFleet so commits are
// fenced.
type FleetConfig struct {
	// Instance names this process in the lease record (default
	// "vlpserved-<pid>"). Must be unique within the fleet.
	Instance string
	// Advertise is the base URL (scheme://host:port) followers use to
	// proxy solves to this process when it leads. Empty disables
	// proxying toward this instance: followers degrade straight to the
	// fallback rung.
	Advertise string
	// TTL is the lease duration (default 10s): a dead leader is
	// replaced within one TTL.
	TTL time.Duration
	// Poll is the heartbeat/refresh cadence (default TTL/3): leaders
	// renew, followers refresh from the store and stand for election.
	Poll time.Duration
	// Proxy is the retrying client for follower→leader solve proxying;
	// the default retries once with a short jittered backoff so a
	// follower miss fails over to the fallback rung quickly, and bounds
	// each request at TTL/2 so a stalled (SIGSTOP'd, partitioned) leader
	// cannot hang a follower past its own failover horizon.
	Proxy *retryhttp.Client
	// BreakerThreshold is how many consecutive proxy failures open the
	// circuit breaker (default 3): while open, follower misses skip the
	// proxy rung entirely and degrade straight to the ε/2 fallback.
	BreakerThreshold int
	// BreakerCooldown is how long the breaker stays open before letting
	// one probe request through (default TTL — by then a failover has
	// either produced a reachable leader or nothing has changed).
	BreakerCooldown time.Duration
}

func (f *FleetConfig) withDefaults() *FleetConfig {
	g := *f
	if g.TTL <= 0 {
		g.TTL = 10 * time.Second
	}
	if g.Poll <= 0 {
		g.Poll = g.TTL / 3
	}
	if g.Instance == "" {
		g.Instance = fmt.Sprintf("vlpserved-%d", os.Getpid())
	}
	if g.Proxy == nil {
		g.Proxy = &retryhttp.Client{
			HTTP:        &http.Client{Timeout: g.TTL / 2},
			MaxAttempts: 2,
			BaseDelay:   50 * time.Millisecond,
			MaxDelay:    time.Second,
		}
	}
	if g.BreakerThreshold <= 0 {
		g.BreakerThreshold = 3
	}
	if g.BreakerCooldown <= 0 {
		g.BreakerCooldown = g.TTL
	}
	return &g
}

// startFleet stands the process up as leader (first TryAcquire wins)
// or follower, then runs the lease loop until shutdown. Called from
// New after the solver plumbing is ready.
func (s *Server) startFleet() {
	fc := s.cfg.Fleet
	if tok, ok, err := s.store.TryAcquire(fc.Instance, fc.Advertise, fc.TTL); err == nil && ok {
		s.promote(tok)
	} else {
		s.role.Store(leaseFollower)
		s.refreshFromStore()
		s.refreshLeaderHint()
	}
	s.bg.Add(1)
	go s.fleetLoop()
}

// fleetLoop is the heartbeat: renew when leading, refresh + stand for
// election when following. It exits at shutdown (releasing the lease
// so a peer takes over immediately rather than after a TTL).
func (s *Server) fleetLoop() {
	defer s.bg.Done()
	t := time.NewTicker(s.cfg.Fleet.Poll)
	defer t.Stop()
	for {
		select {
		case <-s.fleetStop:
			s.resignLease()
			return
		case <-s.ctx.Done():
			s.resignLease()
			return
		case <-t.C:
			s.fleetTick()
		}
	}
}

// fleetTick is one heartbeat. Exported behavior lives in /stats:
// lease_renewals counts successful renews, lease_losses demotions.
func (s *Server) fleetTick() {
	fc := s.cfg.Fleet
	if s.role.Load() == leaseLeader {
		// Renewing with the store's fence couples the two loss signals:
		// a stale-fence commit clears the fence, which fails the next
		// renew, which demotes — no separate bookkeeping to drift.
		ok, err := s.store.Renew(fc.Instance, s.store.Fence(), fc.TTL)
		switch {
		case err != nil:
			// Transient lease I/O: keep leading — fenced commits stay
			// safe even if the lease lapses — and retry next tick.
		case ok:
			s.stats.leaseRenewed()
		default:
			s.demote()
		}
		return
	}
	s.refreshFromStore()
	if tok, ok, err := s.store.TryAcquire(fc.Instance, fc.Advertise, fc.TTL); err == nil && ok {
		s.promote(tok)
	} else {
		s.refreshLeaderHint()
	}
}

// promote installs this process as leader: solves, upgrades and
// checkpoints are on, and the previous leader's interrupted solves are
// re-enqueued from their durable checkpoints.
func (s *Server) promote(token uint64) {
	_ = token // the store carries the fence; the role flag is ours
	s.role.Store(leaseLeader)
	s.leaderURL.Store("")
	s.recoverFromStore()
}

// demote flips a leader that lost its lease into a follower. In-flight
// solves keep running — their entries still serve from local memory —
// but persists and checkpoints are abandoned cleanly: the cleared
// fence (and the stale-fence check behind it) turns every commit into
// a quarantined no-op instead of a race with the new leader.
func (s *Server) demote() {
	if s.role.CompareAndSwap(leaseLeader, leaseFollower) {
		s.stats.leaseLost()
	}
}

// resignLease releases the lease on clean shutdown so a peer is
// elected at its next tick instead of waiting out the TTL.
func (s *Server) resignLease() {
	if s.role.Load() == leaseLeader {
		//lint:ignore errflow best-effort courtesy on shutdown: if the release fails the TTL expires the lease anyway, and the process is exiting with nowhere to route the error
		_ = s.store.Release(s.cfg.Fleet.Instance, s.store.Fence())
	}
}

// isFollower reports whether cold solves are forbidden right now.
func (s *Server) isFollower() bool { return s.role.Load() == leaseFollower }

// refreshLeaderHint re-reads the lease and caches the leaseholder's
// advertise URL for the X-VLP-Leader response header. Runs on the lease
// loop's cadence (never on the request path); a missing, expired or
// self-owned lease clears the hint.
func (s *Server) refreshLeaderHint() {
	url := ""
	if rec, ok, err := s.store.LeaseHolder(); err == nil && ok && rec.Owner != s.cfg.Fleet.Instance && !rec.Expired(time.Now()) {
		url = rec.URL
	}
	s.leaderURL.Store(url)
}

// setLeaderHeader stamps X-VLP-Leader with the leaseholder's advertise
// URL on follower responses, so a client that wants the solving tier —
// rather than a follower's read-through or fallback rung — can point
// its next request at the leader directly.
func (s *Server) setLeaderHeader(w http.ResponseWriter) {
	if !s.isFollower() {
		return
	}
	if url, _ := s.leaderURL.Load().(string); url != "" {
		w.Header().Set("X-VLP-Leader", url)
	}
}

// leaseState names the current role for /stats.
func (s *Server) leaseState() string {
	switch s.role.Load() {
	case leaseLeader:
		return "leader"
	case leaseFollower:
		return "follower"
	default:
		return "solo"
	}
}

// refreshFromStore is the follower's read-through refresh: one cheap
// delta Scan (unchanged files are never re-read), with new or upgraded
// entries pulled into the local cache while there is room — so a
// follower converges on the leader's solves without a request having
// to miss first. Bounded by refreshLoadCap per tick.
func (s *Server) refreshFromStore() {
	rep, err := s.store.Scan()
	if err != nil {
		return
	}
	if rep.Quarantined > 0 {
		s.stats.scanQuarantined(rep.Quarantined)
	}
	loads := 0
	for _, se := range rep.Delta {
		if loads >= refreshLoadCap {
			break
		}
		key := se.Digest
		if _, cached := s.cache.get(key); !cached && s.cache.len() >= s.cfg.CacheSize {
			// Never evict a hot mechanism for speculative warmth; an
			// upgrade of something already cached is always taken.
			continue
		}
		if warm := s.entryFromStore(key, nil); warm != nil {
			evicted := s.cache.add(key, warm)
			s.stats.refreshLoaded(evicted)
			loads++
		}
	}
}

// followerEntry is the follower's cache/store-miss path: never cold-
// solve (the solve pool is the leader's). Proxy the solve to the
// leaseholder and read the committed result back through the store —
// re-validated by the local EnforceGeoI gate like any snapshot — or
// degrade to the exponential-fallback rung, served locally and
// deliberately not cached so the next miss re-escalates to the leader.
func (s *Server) followerEntry(ctx context.Context, key string, spec *serial.SolveSpec) (*entry, error) {
	if s.proxySolve(ctx, spec) {
		if warm := s.entryFromStore(key, spec); warm != nil {
			evicted := s.cache.add(key, warm)
			s.stats.proxied(evicted)
			return warm, nil
		}
	}
	e, err := s.fallbackEntry(spec)
	if err != nil {
		return nil, err
	}
	e.key = key
	return e, nil
}

// proxySolve asks the current leaseholder to solve spec, reporting
// whether a committed result should now exist in the store. It refuses
// to proxy to itself (a demoted leader may still be on file briefly)
// and treats every non-2xx or transport failure as "leader
// unavailable" — the caller degrades instead of erroring.
//
// The attempt is gated by the proxy circuit breaker: lease-lookup
// refusals don't count (no leader on file is not a leader failure), but
// every admitted attempt reports its outcome, so a blackholed leader
// opens the breaker after BreakerThreshold misses and subsequent
// requests skip the retry budget entirely.
func (s *Server) proxySolve(ctx context.Context, spec *serial.SolveSpec) bool {
	fc := s.cfg.Fleet
	rec, ok, err := s.store.LeaseHolder()
	if err != nil || !ok || rec.Owner == "" || rec.URL == "" || rec.Owner == fc.Instance {
		return false
	}
	if rec.Expired(time.Now()) {
		return false
	}
	if !s.proxyBreaker.allow() {
		return false
	}
	reached := false
	if ferr := faultinject.At(FaultSiteFleetProxy); ferr == nil {
		status, perr := fc.Proxy.PostJSON(ctx, rec.URL+"/solve", spec, nil)
		reached = perr == nil && status >= 200 && status < 300
	}
	s.proxyBreaker.result(reached)
	return reached
}

// fallbackEntry builds the bottom-rung entry — the ε/2 exponential
// mechanism, repaired to exact Geo-I feasibility — without touching
// the solve pool. The privacy guarantee is identical to every other
// rung; only ETDD degrades.
func (s *Server) fallbackEntry(spec *serial.SolveSpec) (*entry, error) {
	pr, err := s.buildProblem(spec)
	if err != nil {
		return nil, err
	}
	served, etdd, err := pr.EnforceGeoI(pr.ExponentialMechanism(), geoITol)
	if err != nil {
		return nil, err
	}
	return &entry{
		prob:     pr,
		mech:     served,
		etdd:     etdd,
		tier:     serial.QualityFallback,
		sampleMu: newChanMutex(),
		rng:      rand.New(rand.NewSource(s.cfg.Seed + s.seq.Add(1))),
	}, nil
}

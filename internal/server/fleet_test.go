package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/retryhttp"
	"repro/internal/serial"
	"repro/internal/store"
)

func fleetStore(t *testing.T, dir string) *store.Store {
	t.Helper()
	st, err := store.OpenFleet(dir)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// swapHandler lets a test advertise an httptest URL before the server
// behind it exists (FleetConfig.Advertise is needed at New time).
type swapHandler struct{ h atomic.Value }

func (s *swapHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if h, ok := s.h.Load().(http.Handler); ok && h != nil {
		h.ServeHTTP(w, r)
		return
	}
	http.Error(w, "leader not up", http.StatusServiceUnavailable)
}

// TestSoloLeaseState: without a fleet config the server stays in solo
// mode — full solver rights, no lease, fence 0.
func TestSoloLeaseState(t *testing.T) {
	srv := New(context.Background(), Config{DisableUpgrade: true})
	snap := srv.Stats()
	if snap.LeaseState != "solo" || snap.FenceToken != 0 {
		t.Fatalf("lease_state=%q fence_token=%d, want solo/0", snap.LeaseState, snap.FenceToken)
	}
	if srv.isFollower() {
		t.Fatal("solo server must keep cold-solve rights")
	}
}

// TestFleetRolesAndCleanHandover: the first member of a fleet leads,
// the second follows, and a clean shutdown hands leadership over at the
// next poll (no TTL wait) with a bumped fencing token.
func TestFleetRolesAndCleanHandover(t *testing.T) {
	dir := t.TempDir()
	srvA := New(context.Background(), Config{
		Store:          fleetStore(t, dir),
		DisableUpgrade: true,
		Fleet:          &FleetConfig{Instance: "a", TTL: 5 * time.Second, Poll: 50 * time.Millisecond},
	})
	if snap := srvA.Stats(); snap.LeaseState != "leader" || snap.FenceToken != 1 {
		t.Fatalf("first member: lease_state=%q fence_token=%d, want leader/1", snap.LeaseState, snap.FenceToken)
	}
	srvB := New(context.Background(), Config{
		Store:          fleetStore(t, dir),
		DisableUpgrade: true,
		Fleet:          &FleetConfig{Instance: "b", TTL: 5 * time.Second, Poll: 50 * time.Millisecond},
	})
	defer srvB.Shutdown(context.Background())
	if snap := srvB.Stats(); snap.LeaseState != "follower" || snap.FenceToken != 0 {
		t.Fatalf("second member: lease_state=%q fence_token=%d, want follower/0", snap.LeaseState, snap.FenceToken)
	}
	// The leader keeps renewing while it lives.
	waitFor(t, 5*time.Second, func() bool { return srvA.Stats().LeaseRenewals >= 2 })

	if err := srvA.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	// Clean shutdown released the lease: the follower wins the next
	// election tick without waiting out the TTL, with token 1+1.
	waitFor(t, 5*time.Second, func() bool { return srvB.Stats().LeaseState == "leader" })
	if snap := srvB.Stats(); snap.FenceToken != 2 {
		t.Fatalf("handover fence_token = %d, want 2", snap.FenceToken)
	}
	rec, ok, err := srvB.store.LeaseHolder()
	if err != nil || !ok || rec.Owner != "b" || rec.Token != 2 {
		t.Fatalf("lease record after handover: %+v ok=%v err=%v, want owner b token 2", rec, ok, err)
	}
}

// TestFleetFollowerFallbackRung: with the lease held by an unreachable
// peer, a follower miss degrades to the locally built ε/2 exponential
// rung — served, Geo-I-verified, counted as degraded, and deliberately
// not cached so the next miss re-escalates toward the leader.
func TestFleetFollowerFallbackRung(t *testing.T) {
	dir := t.TempDir()
	// A dead advertised URL: connection refused, so the proxy attempt
	// fails fast and the follower walks down to the fallback rung.
	dead := httptest.NewServer(http.NotFoundHandler())
	deadURL := dead.URL
	dead.Close()
	holder := fleetStore(t, dir)
	if _, ok, err := holder.TryAcquire("ext", deadURL, time.Hour); err != nil || !ok {
		t.Fatalf("planting external lease: ok=%v err=%v", ok, err)
	}

	srv := New(context.Background(), Config{
		Store:          fleetStore(t, dir),
		DisableUpgrade: true,
		Fleet: &FleetConfig{Instance: "b", TTL: time.Hour, Poll: 10 * time.Second,
			Proxy: &retryhttp.Client{MaxAttempts: 1, BaseDelay: 10 * time.Millisecond, MaxDelay: 50 * time.Millisecond}},
	})
	defer srv.Shutdown(context.Background())
	if snap := srv.Stats(); snap.LeaseState != "follower" {
		t.Fatalf("lease_state = %q, want follower", snap.LeaseState)
	}
	spec := testSpecs(t, 1)[0]
	for i := 0; i < 2; i++ {
		e, cached, err := srv.mechanismFor(context.Background(), spec)
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		if cached {
			t.Fatalf("request %d served from cache: fallback entries must not stick", i)
		}
		if e.tier != serial.QualityFallback {
			t.Fatalf("request %d tier %q, want fallback", i, e.tier)
		}
		assertServable(t, e)
	}
	snap := srv.Stats()
	if snap.Solves != 0 || snap.StoreWrites != 0 {
		t.Fatalf("follower ran solves=%d store_writes=%d, want 0/0", snap.Solves, snap.StoreWrites)
	}
	if snap.CacheMisses != 2 || snap.DegradedServes != 2 {
		t.Fatalf("misses=%d degraded=%d, want 2/2 (fallback not cached)", snap.CacheMisses, snap.DegradedServes)
	}
	if snap.ProxiedSolves != 0 {
		t.Fatalf("proxied_solves = %d, want 0 with the leader unreachable", snap.ProxiedSolves)
	}
}

// TestFleetFollowerProxiesToLeader: a follower miss is proxied to the
// advertised leader, the leader's committed snapshot is read back
// through the store (re-passing the local EnforceGeoI gate), cached,
// and counted in proxied_solves. The follower itself never solves and
// never writes.
func TestFleetFollowerProxiesToLeader(t *testing.T) {
	dir := t.TempDir()
	sw := &swapHandler{}
	ts := httptest.NewServer(sw)
	defer ts.Close()

	leader := New(context.Background(), Config{
		Store:          fleetStore(t, dir),
		DisableUpgrade: true,
		Fleet:          &FleetConfig{Instance: "a", Advertise: ts.URL, TTL: 5 * time.Second, Poll: 50 * time.Millisecond},
	})
	defer leader.Shutdown(context.Background())
	sw.h.Store(leader.Handler())
	if snap := leader.Stats(); snap.LeaseState != "leader" {
		t.Fatalf("leader lease_state = %q", snap.LeaseState)
	}

	follower := New(context.Background(), Config{
		Store:          fleetStore(t, dir),
		DisableUpgrade: true,
		Fleet:          &FleetConfig{Instance: "b", TTL: 5 * time.Second, Poll: 50 * time.Millisecond},
	})
	defer follower.Shutdown(context.Background())

	spec := testSpecs(t, 1)[0]
	e, cached, err := follower.mechanismFor(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if cached {
		t.Fatal("first follower request reported a cache hit")
	}
	if e.tier != serial.QualityOptimal {
		t.Fatalf("proxied entry tier %q, want optimal (leader solved it)", e.tier)
	}
	assertServable(t, e)

	fsnap := follower.Stats()
	if fsnap.ProxiedSolves != 1 || fsnap.Solves != 0 || fsnap.StoreWrites != 0 {
		t.Fatalf("follower proxied=%d solves=%d store_writes=%d, want 1/0/0",
			fsnap.ProxiedSolves, fsnap.Solves, fsnap.StoreWrites)
	}
	lsnap := leader.Stats()
	if lsnap.Solves != 1 || lsnap.StoreWrites != 1 {
		t.Fatalf("leader solves=%d store_writes=%d, want 1/1", lsnap.Solves, lsnap.StoreWrites)
	}
	// The committed snapshot carries the leader's fencing token.
	se, err := leader.store.LoadEntry(spec.Digest())
	if err != nil {
		t.Fatal(err)
	}
	if se.Fence != 1 {
		t.Fatalf("snapshot fence = %d, want the leader's token 1", se.Fence)
	}
	// The proxied entry stuck in the follower's cache: next request hits.
	if _, cached, err := follower.mechanismFor(context.Background(), spec); err != nil || !cached {
		t.Fatalf("second follower request: cached=%v err=%v, want cache hit", cached, err)
	}
}

// TestFleetRefreshWarmsFollower: the follower's refresh loop pulls the
// leader's commits into the local cache before any request misses, so a
// follower answers warm without proxying.
func TestFleetRefreshWarmsFollower(t *testing.T) {
	dir := t.TempDir()
	leader := New(context.Background(), Config{
		Store:          fleetStore(t, dir),
		DisableUpgrade: true,
		Fleet:          &FleetConfig{Instance: "a", TTL: 5 * time.Second, Poll: 50 * time.Millisecond},
	})
	defer leader.Shutdown(context.Background())
	spec := testSpecs(t, 1)[0]
	if _, _, err := leader.mechanismFor(context.Background(), spec); err != nil {
		t.Fatal(err)
	}

	follower := New(context.Background(), Config{
		Store:          fleetStore(t, dir),
		DisableUpgrade: true,
		Fleet:          &FleetConfig{Instance: "b", TTL: 5 * time.Second, Poll: 50 * time.Millisecond},
	})
	defer follower.Shutdown(context.Background())
	waitFor(t, 5*time.Second, func() bool { return follower.Stats().RefreshLoads >= 1 })

	e, cached, err := follower.mechanismFor(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if !cached {
		t.Fatal("refreshed entry not served from the follower's cache")
	}
	if e.tier != serial.QualityOptimal {
		t.Fatalf("refreshed entry tier %q, want optimal", e.tier)
	}
	assertServable(t, e)
	snap := follower.Stats()
	if snap.Solves != 0 || snap.ProxiedSolves != 0 || snap.StoreWrites != 0 {
		t.Fatalf("warm follower solves=%d proxied=%d store_writes=%d, want 0/0/0",
			snap.Solves, snap.ProxiedSolves, snap.StoreWrites)
	}
}

// TestFleetStaleFenceDemotesLeader exercises the coupled loss signals:
// a commit that fails the fence check is quarantined (not crashed on,
// not visible), the cleared fence fails the next renew, the leader
// demotes — and, still holding the on-file lease, re-elects itself one
// tick later with its fence restored. Durability heals on the next
// commit.
func TestFleetStaleFenceDemotesLeader(t *testing.T) {
	defer faultinject.Reset()
	dir := t.TempDir()
	srv := New(context.Background(), Config{
		Store:          fleetStore(t, dir),
		DisableUpgrade: true,
		Fleet:          &FleetConfig{Instance: "a", TTL: 5 * time.Second, Poll: 50 * time.Millisecond},
	})
	defer srv.Shutdown(context.Background())
	ctr := &solveCounter{counts: map[string]int{}, tb: t}
	ctr.install(srv)
	spec := testSpecs(t, 1)[0]

	faultinject.Set(store.FaultSiteStaleFence, faultinject.Fault{Err: errors.New("injected fence check"), Times: 1})
	e, _, err := srv.mechanismFor(context.Background(), spec)
	if err != nil {
		t.Fatalf("stale-fence commit must not surface to the client: %v", err)
	}
	assertServable(t, e)
	snap := srv.Stats()
	if snap.StoreWrites != 0 {
		t.Fatalf("store_writes = %d after a fenced-out commit, want 0", snap.StoreWrites)
	}
	if snap.FenceToken != 0 {
		t.Fatalf("fence_token = %d after a fenced-out commit, want 0 (cleared)", snap.FenceToken)
	}
	if _, err := srv.store.LoadEntry(spec.Digest()); !errors.Is(err, store.ErrNotFound) {
		t.Fatalf("fenced-out snapshot became visible: %v", err)
	}

	// The cleared fence fails the next heartbeat renew: demotion.
	waitFor(t, 5*time.Second, func() bool { return srv.Stats().LeaseLosses >= 1 })
	// The lease file still names us, so the follower tick after that
	// re-elects self: fence restored, commit rights back.
	waitFor(t, 5*time.Second, func() bool {
		s := srv.Stats()
		return s.LeaseState == "leader" && s.FenceToken == 1
	})
	srv.cache = newMechCache(srv.cfg.CacheSize)
	if _, _, err := srv.mechanismFor(context.Background(), spec); err != nil {
		t.Fatal(err)
	}
	if snap := srv.Stats(); snap.StoreWrites != 1 {
		t.Fatalf("store_writes = %d after fence restored, want 1", snap.StoreWrites)
	}
	se, err := srv.store.LoadEntry(spec.Digest())
	if err != nil {
		t.Fatal(err)
	}
	if se.Fence != 1 {
		t.Fatalf("healed snapshot fence = %d, want 1", se.Fence)
	}
}

// TestFleetFailoverRecoversCheckpoint: a leader that dies without
// releasing (its release I/O faulted) leaves the lease to expire; the
// follower wins the election within one TTL, bumps the token, and its
// promotion re-enqueues the dead leader's interrupted solve from the
// durable checkpoint.
func TestFleetFailoverRecoversCheckpoint(t *testing.T) {
	defer faultinject.Reset()
	dir := t.TempDir()
	srvA := New(context.Background(), Config{
		Store:          fleetStore(t, dir),
		DisableUpgrade: true,
		Fleet:          &FleetConfig{Instance: "a", TTL: 400 * time.Millisecond, Poll: 100 * time.Millisecond},
	})
	srvB := New(context.Background(), Config{
		Store:          fleetStore(t, dir),
		DisableUpgrade: true,
		Fleet:          &FleetConfig{Instance: "b", TTL: 400 * time.Millisecond, Poll: 50 * time.Millisecond},
	})
	defer srvB.Shutdown(context.Background())
	if snap := srvB.Stats(); snap.LeaseState != "follower" || snap.RecoveredSolves != 0 {
		t.Fatalf("pre-failover follower: %+v", snap)
	}

	// The "dead" leader's unfinished work: a mid-solve checkpoint,
	// committed through a solo (unfenced) handle standing in for the
	// leader's own fenced write.
	spec := testSpecs(t, 2)[1]
	solo, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	ck := &serial.StoredCheckpoint{Spec: *spec, Rounds: 1, State: *storedStateFrom(mustState(t, srvA, spec))}
	if err := solo.WriteCheckpoint(ck); err != nil {
		t.Fatal(err)
	}

	// Kill the leader dirty: its lease release faults, so the record
	// stays on file and the follower must wait out the TTL.
	faultinject.Set(store.FaultSiteLeaseRelease, faultinject.Fault{Err: errors.New("injected release loss"), Times: 1})
	if err := srvA.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	rec, ok, err := srvB.store.LeaseHolder()
	if err != nil || !ok || rec.Owner != "a" {
		t.Fatalf("dirty death released the lease anyway: %+v ok=%v err=%v", rec, ok, err)
	}

	waitFor(t, 5*time.Second, func() bool { return srvB.Stats().LeaseState == "leader" })
	snap := srvB.Stats()
	if snap.FenceToken != 2 {
		t.Fatalf("failover fence_token = %d, want 2 (takeover bumps)", snap.FenceToken)
	}
	if snap.RecoveredSolves != 1 {
		t.Fatalf("recovered_solves = %d, want 1 (checkpoint re-enqueued on promotion)", snap.RecoveredSolves)
	}
	if rec, _, _ := srvB.store.LeaseHolder(); rec.Owner != "b" || rec.Token != 2 {
		t.Fatalf("lease record after failover: %+v, want owner b token 2", rec)
	}
}

// TestFleetFollowerLeaderHeader: follower responses carry the
// leaseholder's advertise URL in X-VLP-Leader so clients can reach the
// solving tier directly; the leader (and a solo server) never sets it.
func TestFleetFollowerLeaderHeader(t *testing.T) {
	dir := t.TempDir()
	sw := &swapHandler{}
	ts := httptest.NewServer(sw)
	defer ts.Close()

	leader := New(context.Background(), Config{
		Store:          fleetStore(t, dir),
		DisableUpgrade: true,
		Fleet:          &FleetConfig{Instance: "a", Advertise: ts.URL, TTL: 5 * time.Second, Poll: 50 * time.Millisecond},
	})
	defer leader.Shutdown(context.Background())
	sw.h.Store(leader.Handler())

	follower := New(context.Background(), Config{
		Store:          fleetStore(t, dir),
		DisableUpgrade: true,
		Fleet:          &FleetConfig{Instance: "b", TTL: 5 * time.Second, Poll: 50 * time.Millisecond},
	})
	defer follower.Shutdown(context.Background())
	fts := httptest.NewServer(follower.Handler())
	defer fts.Close()

	spec := testSpecs(t, 1)[0]
	payload, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	post := func(ts *httptest.Server) *http.Response {
		t.Helper()
		resp, err := ts.Client().Post(ts.URL+"/solve", "application/json", bytes.NewReader(payload))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp
	}

	resp := post(fts)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("follower solve answered %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-VLP-Leader"); got != ts.URL {
		t.Fatalf("follower X-VLP-Leader = %q, want %q", got, ts.URL)
	}
	// The leader must not point clients at itself.
	if resp := post(ts); resp.Header.Get("X-VLP-Leader") != "" {
		t.Fatalf("leader set X-VLP-Leader = %q", resp.Header.Get("X-VLP-Leader"))
	}

	solo := New(context.Background(), Config{DisableUpgrade: true})
	defer solo.Shutdown(context.Background())
	sts := httptest.NewServer(solo.Handler())
	defer sts.Close()
	if resp := post(sts); resp.Header.Get("X-VLP-Leader") != "" {
		t.Fatalf("solo server set X-VLP-Leader = %q", resp.Header.Get("X-VLP-Leader"))
	}
}

// TestFleetProxyBreakerTrips: the circuit breaker on the proxy rung,
// end to end against a real follower. The leaseholder is blackholed at
// the FaultSiteFleetProxy injection point for exactly BreakerThreshold
// attempts; after the trip, follower misses must reach the ε/2 rung
// without touching the leader at all — the advertised URL is live and
// counting, and it must stay at zero hits while the breaker is open.
// Forcing the cooldown to have elapsed then admits a single half-open
// probe, which succeeds and closes the breaker. Run under -race in ci.
func TestFleetProxyBreakerTrips(t *testing.T) {
	defer faultinject.Reset()
	dir := t.TempDir()

	// A live "leader" that counts proxy arrivals and answers 200 —
	// reachable the whole time, so any hit while the breaker is open is
	// a breaker bug, not a network accident.
	var leaderHits atomic.Int64
	leader := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		leaderHits.Add(1)
		w.WriteHeader(http.StatusOK)
	}))
	defer leader.Close()

	holder := fleetStore(t, dir)
	if _, ok, err := holder.TryAcquire("ext", leader.URL, time.Hour); err != nil || !ok {
		t.Fatalf("planting external lease: ok=%v err=%v", ok, err)
	}

	const threshold = 3
	srv := New(context.Background(), Config{
		Store:          fleetStore(t, dir),
		DisableUpgrade: true,
		Fleet: &FleetConfig{Instance: "b", TTL: time.Hour, Poll: 10 * time.Second,
			BreakerThreshold: threshold, BreakerCooldown: time.Hour,
			Proxy: &retryhttp.Client{MaxAttempts: 1, BaseDelay: 10 * time.Millisecond, MaxDelay: 50 * time.Millisecond}},
	})
	defer srv.Shutdown(context.Background())
	if snap := srv.Stats(); snap.LeaseState != "follower" || snap.ProxyBreakerState != "closed" {
		t.Fatalf("setup: lease_state=%q breaker=%q", snap.LeaseState, snap.ProxyBreakerState)
	}

	// Blackhole exactly the first `threshold` proxy attempts.
	faultinject.Set(FaultSiteFleetProxy, faultinject.Fault{
		Err: errors.New("injected partition"), Times: threshold,
	})

	spec := testSpecs(t, 1)[0]
	serveMiss := func(i int) {
		t.Helper()
		e, cached, err := srv.mechanismFor(context.Background(), spec)
		if err != nil || cached {
			t.Fatalf("miss %d: cached=%v err=%v", i, cached, err)
		}
		if e.tier != serial.QualityFallback {
			t.Fatalf("miss %d: tier %q, want fallback", i, e.tier)
		}
		assertServable(t, e)
	}
	for i := 0; i < threshold; i++ {
		serveMiss(i)
	}
	snap := srv.Stats()
	if snap.ProxyBreakerState != "open" || snap.ProxyBreakerTrips != 1 {
		t.Fatalf("after %d blackholed attempts: breaker=%q trips=%d, want open/1",
			threshold, snap.ProxyBreakerState, snap.ProxyBreakerTrips)
	}
	if leaderHits.Load() != 0 {
		t.Fatalf("leader hit %d times through the injected blackhole", leaderHits.Load())
	}

	// Open breaker: misses degrade immediately. The fault is exhausted,
	// so any proxy attempt WOULD succeed — reaching the leader now can
	// only mean the breaker failed to gate.
	for i := 0; i < 5; i++ {
		serveMiss(threshold + i)
	}
	if leaderHits.Load() != 0 {
		t.Fatalf("open breaker let %d requests through", leaderHits.Load())
	}

	// Cooldown "elapses": backdate the trip. The next miss is admitted
	// as the half-open probe, reaches the live leader, and closes the
	// breaker. (The probe 200 has no store entry behind it, so the
	// request itself still serves the fallback rung.)
	srv.proxyBreaker.mu.Lock()
	srv.proxyBreaker.openedAt = time.Now().Add(-2 * time.Hour)
	srv.proxyBreaker.mu.Unlock()
	serveMiss(99)
	if hits := leaderHits.Load(); hits != 1 {
		t.Fatalf("half-open probe hit the leader %d times, want 1", hits)
	}
	snap = srv.Stats()
	if snap.ProxyBreakerState != "closed" || snap.ProxyBreakerTrips != 1 {
		t.Fatalf("after probe: breaker=%q trips=%d, want closed/1", snap.ProxyBreakerState, snap.ProxyBreakerTrips)
	}
	if snap.Solves != 0 || snap.StoreWrites != 0 {
		t.Fatalf("follower solved/wrote: %d/%d", snap.Solves, snap.StoreWrites)
	}
}

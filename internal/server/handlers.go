package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"repro/internal/roadnet"
	"repro/internal/serial"
)

// Request-body and batch ceilings: a city-scale network serialises to a
// few MB, and a batch is one fleet's reporting tick, not a bulk export.
const (
	maxBodyBytes = 32 << 20
	maxBatch     = 10000
)

// Handler returns the service's HTTP routes:
//
//	POST /solve      solve (or fetch) the mechanism for a spec
//	POST /obfuscate  obfuscate a batch of locations under a spec
//	GET  /stats      counters + per-mechanism cache contents
//	GET  /healthz    readiness probe: 503 once shutdown begins, so load
//	                 balancers stop routing to a draining instance
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /solve", s.handleSolve)
	mux.HandleFunc("POST /obfuscate", s.handleObfuscate)
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		if s.Draining() {
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		w.WriteHeader(http.StatusOK)
	})
	return mux
}

func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request) {
	s.setLeaderHeader(w)
	var spec serial.SolveSpec
	if !s.decode(w, r, &spec) {
		return
	}
	if err := spec.Validate(); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	e, cached, err := s.mechanismFor(r.Context(), &spec)
	if err != nil {
		s.writeServiceError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, serial.SolveResponse{
		Key:     e.key,
		Cached:  cached,
		K:       e.mech.K(),
		ETDD:    e.etdd,
		Bound:   e.bound,
		SolveMs: float64(e.solveTime.Microseconds()) / 1000,
		Quality: e.tier,
	})
}

func (s *Server) handleObfuscate(w http.ResponseWriter, r *http.Request) {
	s.setLeaderHeader(w)
	var req serial.ObfuscateRequest
	if !s.decode(w, r, &req) {
		return
	}
	if err := req.Validate(); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if len(req.Locations) == 0 {
		writeError(w, http.StatusBadRequest, errors.New("server: empty location batch"))
		return
	}
	if len(req.Locations) > maxBatch {
		writeError(w, http.StatusBadRequest, fmt.Errorf("server: batch of %d exceeds cap %d", len(req.Locations), maxBatch))
		return
	}
	e, cached, err := s.mechanismFor(r.Context(), &req.SolveSpec)
	if err != nil {
		s.writeServiceError(w, err)
		return
	}
	// Sampling runs on the serve tier, acquired only after the mechanism
	// is in hand: a request that just paid for (or queued on) a cold
	// solve holds no serve slot during that wait, and a cached request
	// never competes with the solve pool at all. One slot covers the
	// whole batch.
	if err := s.serveGate.acquire(r.Context()); err != nil {
		s.writeServiceError(w, err)
		return
	}
	defer s.serveGate.release()
	g := e.prob.Part.G
	out := make([]serial.Loc, len(req.Locations))
	for i, loc := range req.Locations {
		truth, err := toLocation(g, loc)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("location %d: %w", i, err))
			return
		}
		obf, err := e.sample(r.Context(), truth)
		if err != nil {
			s.writeServiceError(w, err)
			return
		}
		out[i] = serial.Loc{Road: int(obf.Edge), FromStart: obf.FromStart(g)}
	}
	writeJSON(w, http.StatusOK, serial.ObfuscateResponse{
		Key:       e.key,
		Cached:    cached,
		Quality:   e.tier,
		Locations: out,
	})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

// toLocation validates a wire location against the graph and converts it
// to the internal convention. The error messages deliberately carry no
// value derived from the location — they are echoed verbatim into HTTP
// error responses, and a raw road index or offset (or even the selected
// road's length) would leak the true position the Geo-I mechanism
// exists to hide. privtaint enforces this.
func toLocation(g *roadnet.Graph, l serial.Loc) (roadnet.Location, error) {
	if l.Road < 0 || l.Road >= g.NumEdges() {
		return roadnet.Location{}, fmt.Errorf("road index out of range [0, %d)", g.NumEdges())
	}
	w := g.Edge(roadnet.EdgeID(l.Road)).Weight
	if !(l.FromStart >= 0) || l.FromStart > w {
		return roadnet.Location{}, errors.New("from_start outside road length")
	}
	return roadnet.LocationFromStart(g, roadnet.EdgeID(l.Road), l.FromStart), nil
}

// decode reads a bounded JSON body into v, answering 4xx on failure.
func (s *Server) decode(w http.ResponseWriter, r *http.Request, v interface{}) bool {
	if s.closed.Load() {
		writeError(w, http.StatusServiceUnavailable, ErrClosed)
		return false
	}
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err := dec.Decode(v); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeError(w, http.StatusRequestEntityTooLarge, err)
		} else {
			writeError(w, http.StatusBadRequest, fmt.Errorf("server: bad request body: %w", err))
		}
		return false
	}
	return true
}

// writeServiceError maps mechanismFor/sample failures to statuses:
// backpressure → 429, shutdown → 503, solve-wait or request deadline →
// 504, anything else (a solver rejection of a pathological instance) →
// 422.
func (s *Server) writeServiceError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, ErrBusy):
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, err)
	case errors.Is(err, ErrClosed):
		writeError(w, http.StatusServiceUnavailable, err)
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		writeError(w, http.StatusGatewayTimeout, err)
	default:
		writeError(w, http.StatusUnprocessableEntity, err)
	}
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, serial.ErrorResponse{Error: err.Error()})
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

package server

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/roadnet"
	"repro/internal/serial"
)

// ladderSpec is a small real spec the ladder tests solve end to end
// (the ladder's rungs only exist in the real solve path, so these tests
// do not stub solveFn).
func ladderSpec(t *testing.T) *serial.SolveSpec {
	t.Helper()
	return testSpecs(t, 1)[0]
}

// assertServable asserts the serving invariant that holds on every
// ladder rung: the mechanism satisfies the full Geo-I constraint set and
// is row-stochastic within the advertised 1e-9.
func assertServable(t *testing.T, e *entry) {
	t.Helper()
	if e == nil || e.mech == nil {
		t.Fatal("no servable entry")
	}
	if v := e.prob.GeoIViolation(e.mech); v > 1e-9 {
		t.Errorf("tier %q mechanism violates Geo-I by %g", e.tier, v)
	}
	if v := e.mech.RowStochasticError(); v > 1e-9 {
		t.Errorf("tier %q mechanism row-stochastic error %g", e.tier, v)
	}
}

// TestLadderOptimal: an unconstrained solve lands on the top rung.
func TestLadderOptimal(t *testing.T) {
	srv := New(context.Background(), Config{DisableUpgrade: true})
	e, err := srv.solve(context.Background(), ladderSpec(t))
	if err != nil {
		t.Fatal(err)
	}
	if e.tier != serial.QualityOptimal {
		t.Fatalf("tier %q, want optimal", e.tier)
	}
	assertServable(t, e)
}

// TestLadderIncumbentOnCancel: cancellation after a completed master
// round degrades to the interrupted run's incumbent, never to an error.
func TestLadderIncumbentOnCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	srv := New(context.Background(), Config{
		DisableUpgrade: true,
		CG: core.CGOptions{
			Xi: -1e-9, RelGap: -1, // force many rounds so the cancel lands mid-run
			OnIteration: func(iter int, _ core.CGIteration) {
				if iter == 0 {
					cancel()
				}
			},
		},
	})
	e, err := srv.solve(ctx, ladderSpec(t))
	if err != nil {
		t.Fatalf("cancelled solve must degrade, got error %v", err)
	}
	if e.tier != serial.QualityIncumbent {
		t.Fatalf("tier %q, want incumbent", e.tier)
	}
	assertServable(t, e)
	if snap := srv.Stats(); snap.CancelledSolves != 1 {
		t.Errorf("cancelled_solves = %d, want 1", snap.CancelledSolves)
	}
}

// TestLadderFallbackOnPreCancel: cancellation before any master round
// leaves no incumbent; the bottom rung serves the exponential mechanism.
func TestLadderFallbackOnPreCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	srv := New(context.Background(), Config{DisableUpgrade: true})
	e, err := srv.solve(ctx, ladderSpec(t))
	if err != nil {
		t.Fatalf("pre-cancelled solve must degrade, got error %v", err)
	}
	if e.tier != serial.QualityFallback {
		t.Fatalf("tier %q, want fallback", e.tier)
	}
	if e.bound != 0 {
		t.Errorf("fallback entry carries a dual bound %v", e.bound)
	}
	assertServable(t, e)
	if snap := srv.Stats(); snap.CancelledSolves != 1 {
		t.Errorf("cancelled_solves = %d, want 1", snap.CancelledSolves)
	}
}

// TestLadderFallbackOnPanic: a solver panic is recovered into the bottom
// rung and counted.
func TestLadderFallbackOnPanic(t *testing.T) {
	defer faultinject.Reset()
	faultinject.Set(core.FaultSiteCGMaster, faultinject.Fault{Panic: "chaos", Times: 1})
	srv := New(context.Background(), Config{DisableUpgrade: true})
	e, err := srv.solve(context.Background(), ladderSpec(t))
	if err != nil {
		t.Fatalf("panicked solve must degrade, got error %v", err)
	}
	if e.tier != serial.QualityFallback {
		t.Fatalf("tier %q, want fallback", e.tier)
	}
	assertServable(t, e)
	if snap := srv.Stats(); snap.PanicRecoveries != 1 {
		t.Errorf("panic_recoveries = %d, want 1", snap.PanicRecoveries)
	}
}

// TestLadderFallbackOnSolverError: a plain solver error (no panic, no
// cancellation) also degrades rather than failing the request.
func TestLadderFallbackOnSolverError(t *testing.T) {
	defer faultinject.Reset()
	faultinject.Set(core.FaultSiteCGMaster, faultinject.Fault{Err: errors.New("chaos"), Times: 1})
	srv := New(context.Background(), Config{DisableUpgrade: true})
	e, err := srv.solve(context.Background(), ladderSpec(t))
	if err != nil {
		t.Fatalf("failed solve must degrade, got error %v", err)
	}
	if e.tier != serial.QualityFallback {
		t.Fatalf("tier %q, want fallback", e.tier)
	}
	assertServable(t, e)
}

// TestLadderSolveDeadline: the per-solve deadline converts a slow solve
// into a degraded entry instead of an error. A long injected delay at
// the pricing site stalls the solve well past the deadline after the
// first master round has completed.
func TestLadderSolveDeadline(t *testing.T) {
	defer faultinject.Reset()
	faultinject.Set(core.FaultSiteCGPricing, faultinject.Fault{Delay: time.Second, Times: 1})
	srv := New(context.Background(), Config{DisableUpgrade: true, SolveDeadline: 300 * time.Millisecond})
	start := time.Now()
	e, _, err := srv.mechanismFor(context.Background(), ladderSpec(t))
	if err != nil {
		t.Fatalf("deadline-bound solve must degrade, got error %v", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("solve took %v despite the deadline", elapsed)
	}
	if e.tier == serial.QualityOptimal {
		t.Fatal("solve stalled past its deadline still claims the optimal tier")
	}
	assertServable(t, e)
	if snap := srv.Stats(); snap.CancelledSolves != 1 {
		t.Errorf("cancelled_solves = %d, want 1", snap.CancelledSolves)
	}
}

// TestExactSpecKeepsConfiguredLimits regression-tests the option-merge
// fix: Exact must tighten only the stop criteria, not discard the rest
// of the configured CG options (a prior version replaced the whole
// struct, losing iteration caps and observers).
func TestExactSpecKeepsConfiguredLimits(t *testing.T) {
	observed := 0
	srv := New(context.Background(), Config{
		DisableUpgrade: true,
		CG: core.CGOptions{
			MaxIterations: 1,
			OnIteration:   func(int, core.CGIteration) { observed++ },
		},
	})
	spec := ladderSpec(t)
	spec.Exact = true
	if _, err := srv.solve(context.Background(), spec); err != nil {
		t.Fatal(err)
	}
	if observed == 0 {
		t.Error("configured OnIteration observer was discarded for an exact spec")
	}
	if observed > 1 {
		t.Errorf("configured MaxIterations=1 was discarded for an exact spec: %d rounds ran", observed)
	}
}

// TestUpgradePromotesDegradedEntry: a degraded cache entry is re-solved
// in the background and replaced by the optimal-tier result.
func TestUpgradePromotesDegradedEntry(t *testing.T) {
	srv := New(context.Background(), Config{})
	degradedFirst := true
	real := srv.solveFn
	srv.solveFn = func(ctx context.Context, spec *serial.SolveSpec) (*entry, error) {
		if degradedFirst {
			degradedFirst = false
			cancelled, cancel := context.WithCancel(ctx)
			cancel() // force the bottom rung for the first (foreground) solve
			return real(cancelled, spec)
		}
		return real(ctx, spec)
	}

	spec := ladderSpec(t)
	e, _, err := srv.mechanismFor(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if e.tier != serial.QualityFallback {
		t.Fatalf("first solve tier %q, want fallback", e.tier)
	}

	// The background upgrade re-solves without the sabotage and promotes.
	waitFor(t, 10*time.Second, func() bool {
		cur, ok := srv.cache.get(spec.Digest())
		return ok && cur.tier == serial.QualityOptimal
	})
	if snap := srv.Stats(); snap.Upgrades != 1 {
		t.Errorf("upgrades = %d, want 1", snap.Upgrades)
	}
	cur, _ := srv.cache.get(spec.Digest())
	assertServable(t, cur)
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestUpgradeResumesFromIncumbentState: a degraded incumbent entry
// carries the interrupted run's column pool, the background re-solve
// resumes from it (finishing in no more rounds than a from-scratch
// solve), and the promoted optimal entry drops the pool.
func TestUpgradeResumesFromIncumbentState(t *testing.T) {
	// A denser spec than ladderSpec so the exact solve needs enough
	// rounds for a mid-run cancellation to leave real work behind.
	rng := rand.New(rand.NewSource(9))
	net := serial.FromGraph(roadnet.Grid(rng, roadnet.GridConfig{
		Rows: 2, Cols: 3, Spacing: 0.3, OneWayFrac: 0.5, WeightJitter: 0.15,
	}))
	spec := &serial.SolveSpec{Network: net, Delta: 0.2, Epsilon: 6}

	// Reference: rounds a from-scratch exact-ish solve takes.
	freshRounds := 0
	fresh := New(context.Background(), Config{DisableUpgrade: true, CG: core.CGOptions{
		Xi: -1e-9, RelGap: -1,
		OnIteration: func(int, core.CGIteration) { freshRounds++ },
	}})
	if e, err := fresh.solve(context.Background(), spec); err != nil || e.tier != serial.QualityOptimal {
		t.Fatalf("reference solve: tier %v err %v", e.tier, err)
	}
	if freshRounds < 3 {
		t.Skipf("reference solve converged in %d rounds; too fast to observe a resume", freshRounds)
	}

	// Degraded first solve: cancel a few rounds in, keeping an incumbent.
	rounds := 0
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	srv := New(context.Background(), Config{DisableUpgrade: true, CG: core.CGOptions{
		Xi: -1e-9, RelGap: -1,
		OnIteration: func(iter int, _ core.CGIteration) {
			rounds++
			if iter == 1 {
				cancel()
			}
		},
	}})
	e, err := srv.solve(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if e.tier != serial.QualityIncumbent {
		t.Fatalf("tier %q, want incumbent", e.tier)
	}
	if e.state == nil || e.state.Columns() == 0 {
		t.Fatal("incumbent entry carries no resumable state")
	}
	e.key = spec.Digest()
	srv.cache.add(e.key, e)

	// The re-solve (what scheduleUpgrade runs) must pick the state up
	// from the cache and finish in no more rounds than from scratch.
	rounds = 0
	e2, err := srv.solve(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if e2.tier != serial.QualityOptimal {
		t.Fatalf("upgrade tier %q, want optimal", e2.tier)
	}
	if rounds > freshRounds {
		t.Errorf("resumed solve took %d rounds, from-scratch takes %d", rounds, freshRounds)
	}
	if e2.state != nil {
		t.Error("optimal entry still carries resume state")
	}
	assertServable(t, e2)
}

// TestShutdownExpiredDrainCancelsSolves: when the drain budget runs out,
// Shutdown cancels the remaining detached solves outright and still
// returns only after they have stopped.
func TestShutdownExpiredDrainCancelsSolves(t *testing.T) {
	srv := New(context.Background(), Config{})
	solveStarted := make(chan struct{})
	srv.solveFn = func(ctx context.Context, spec *serial.SolveSpec) (*entry, error) {
		close(solveStarted)
		<-ctx.Done() // a solve that never finishes on its own
		return nil, ctx.Err()
	}

	errc := make(chan error, 1)
	go func() {
		_, _, err := srv.mechanismFor(context.Background(), ladderSpec(t))
		errc <- err
	}()
	<-solveStarted

	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := srv.Shutdown(ctx)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Shutdown = %v, want deadline exceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("Shutdown took %v after its drain budget expired", elapsed)
	}
	if err := <-errc; err == nil {
		t.Fatal("the cancelled solve's waiter got a nil error")
	}
}

package server

import (
	"bytes"
	"context"
	"encoding/json"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/roadnet"
	"repro/internal/serial"
)

func postJSON(t *testing.T, ts *httptest.Server, path string, body interface{}) (*http.Response, []byte) {
	t.Helper()
	payload, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Post(ts.URL+path, "application/json", bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

// TestServedMechanismProperties solves randomly generated small grids
// through the live HTTP surface and asserts the serving invariants the
// paper's guarantee rests on: every served mechanism satisfies the full
// Geo-I constraint set within 1e-9, every row is a probability
// distribution within 1e-9, and every obfuscated location in a batched
// response lands on a valid road interval of the requested network.
func TestServedMechanismProperties(t *testing.T) {
	srv := New(context.Background(), Config{CacheSize: 8, MaxSolves: 2, Seed: 99})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 3; trial++ {
		g := roadnet.Grid(rng, roadnet.GridConfig{
			Rows: 2, Cols: 2 + trial%2, Spacing: 0.25 + 0.1*rng.Float64(),
			OneWayFrac: 0.5 * rng.Float64(), WeightJitter: 0.1,
		})
		spec := serial.SolveSpec{
			Network: serial.FromGraph(g),
			Delta:   0.15 + 0.1*rng.Float64(),
			Epsilon: 2 + 6*rng.Float64(),
		}

		resp, body := postJSON(t, ts, "/solve", &spec)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("trial %d: /solve status %d: %s", trial, resp.StatusCode, body)
		}
		var sr serial.SolveResponse
		if err := json.Unmarshal(body, &sr); err != nil {
			t.Fatal(err)
		}
		if sr.Key != spec.Digest() {
			t.Fatalf("trial %d: served key %s, want spec digest %s", trial, sr.Key, spec.Digest())
		}

		e, ok := srv.cache.get(sr.Key)
		if !ok {
			t.Fatalf("trial %d: solved mechanism not cached", trial)
		}
		if v := e.prob.GeoIViolation(e.mech); v > 1e-9 {
			t.Errorf("trial %d: served mechanism violates Geo-I by %g", trial, v)
		}
		k := e.mech.K()
		for i := 0; i < k; i++ {
			sum := 0.0
			for _, p := range e.mech.Row(i) {
				if p < 0 {
					t.Fatalf("trial %d: negative probability in row %d", trial, i)
				}
				sum += p
			}
			if math.Abs(sum-1) > 1e-9 {
				t.Errorf("trial %d: row %d sums to %v", trial, i, sum)
			}
		}

		// Batched obfuscation must stay on the network.
		req := serial.ObfuscateRequest{SolveSpec: spec}
		for j := 0; j < 32; j++ {
			road := rng.Intn(g.NumEdges())
			w := g.Edge(roadnet.EdgeID(road)).Weight
			req.Locations = append(req.Locations, serial.Loc{Road: road, FromStart: rng.Float64() * w})
		}
		resp, body = postJSON(t, ts, "/obfuscate", &req)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("trial %d: /obfuscate status %d: %s", trial, resp.StatusCode, body)
		}
		var or serial.ObfuscateResponse
		if err := json.Unmarshal(body, &or); err != nil {
			t.Fatal(err)
		}
		if !or.Cached {
			t.Errorf("trial %d: obfuscate after solve should hit the cache", trial)
		}
		if len(or.Locations) != len(req.Locations) {
			t.Fatalf("trial %d: got %d obfuscated locations, want %d", trial, len(or.Locations), len(req.Locations))
		}
		for j, loc := range or.Locations {
			if loc.Road < 0 || loc.Road >= g.NumEdges() {
				t.Fatalf("trial %d: response %d road %d out of range", trial, j, loc.Road)
			}
			w := g.Edge(roadnet.EdgeID(loc.Road)).Weight
			if math.IsNaN(loc.FromStart) || loc.FromStart < 0 || loc.FromStart > w+1e-12 {
				t.Fatalf("trial %d: response %d from_start %v outside road of length %v", trial, j, loc.FromStart, w)
			}
			inner := roadnet.LocationFromStart(g, roadnet.EdgeID(loc.Road), loc.FromStart)
			if !inner.Valid(g) {
				t.Fatalf("trial %d: response %d is not a valid network location", trial, j)
			}
		}
	}

	// The trials above share the server; hits+misses must account for
	// exactly one solve per distinct spec.
	snap := srv.Stats()
	if snap.Solves != 3 {
		t.Errorf("expected 3 solves for 3 distinct specs, got %d", snap.Solves)
	}
	if snap.CacheHits < 3 {
		t.Errorf("expected at least one cache hit per obfuscate call, got %d", snap.CacheHits)
	}
}

// TestObfuscatePreservesRelativePosition checks the paper's Step-II
// contract end to end: the obfuscated point keeps the true point's
// relative position within its interval, so a point at an interval
// boundary maps to an interval boundary.
func TestObfuscatePreservesRelativePosition(t *testing.T) {
	srv := New(context.Background(), Config{Seed: 5})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	rng := rand.New(rand.NewSource(17))
	g := roadnet.Grid(rng, roadnet.GridConfig{Rows: 2, Cols: 2, Spacing: 0.3})
	spec := serial.SolveSpec{Network: serial.FromGraph(g), Delta: 0.3, Epsilon: 5}

	// With delta == spacing every edge is a single interval, so the
	// relative location within the interval is FromStart measured from
	// the interval end — verify obfuscated offsets stay within edges.
	req := serial.ObfuscateRequest{SolveSpec: spec}
	for road := 0; road < g.NumEdges(); road++ {
		req.Locations = append(req.Locations, serial.Loc{Road: road, FromStart: 0})
	}
	resp, body := postJSON(t, ts, "/obfuscate", &req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/obfuscate status %d: %s", resp.StatusCode, body)
	}
	var or serial.ObfuscateResponse
	if err := json.Unmarshal(body, &or); err != nil {
		t.Fatal(err)
	}
	// Every truth sits at FromStart = 0 — a full interval length from its
	// interval end. All intervals here are whole equal-length edges, so a
	// preserved relative position forces FromStart = 0 in the response.
	for j, loc := range or.Locations {
		if loc.FromStart > 1e-9 {
			t.Fatalf("location %d: relative position not preserved, from_start %v", j, loc.FromStart)
		}
	}
}

// Package server implements the vlpserved obfuscation service: a
// long-lived HTTP front end over the D-VLP solver that exploits the
// offline/online split of location-privacy mechanisms — a column-
// generation solve is expensive but its result is a reusable K×K matrix,
// so the server solves each (network, params) spec once, caches the
// mechanism in a bounded LRU keyed by the spec's content digest, and
// serves obfuscation requests from the cache at sampling cost.
//
// Concurrency contract:
//
//   - concurrent requests for the same spec are deduplicated
//     singleflight-style: one solve runs, everyone shares its result;
//   - cold solves pass a bounded admission gate; past MaxSolves the
//     request is rejected with 429 so load cannot pile up behind the
//     solver;
//   - every cached mechanism carries its own seeded RNG behind a mutex,
//     so obfuscation is safe from any number of handler goroutines;
//   - served mechanisms are re-verified against the full (ε, r)-Geo-I
//     constraint set and repaired if solver tolerances left a residue
//     (core.Problem.EnforceGeoI) — the service never hands out samples
//     from a mechanism that violates the guarantee;
//   - Shutdown drains in-flight solves so their results are not lost
//     mid-computation.
package server

import (
	"context"
	"errors"
	"math/rand"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/discretize"
	"repro/internal/roadnet"
	"repro/internal/serial"
)

// geoITol is the violation ceiling enforced on every served mechanism;
// an order of magnitude below the 1e-9 the service advertises.
const geoITol = 1e-10

// Config tunes a Server. The zero value selects sensible defaults.
type Config struct {
	// CacheSize bounds the mechanism LRU (default 16).
	CacheSize int
	// MaxSolves bounds concurrently running cold solves; requests whose
	// spec needs a solve past this limit receive 429 (default 2).
	MaxSolves int
	// SolveWait caps how long a request waits for a cold solve before
	// giving up with 504; the solve itself keeps running and lands in the
	// cache (default 2 minutes).
	SolveWait time.Duration
	// Seed is the base seed for per-mechanism sampler RNGs; each solved
	// mechanism gets Seed+n for the n-th solve, so a fixed Seed makes a
	// single-threaded request sequence reproducible (default 1).
	Seed int64
	// CG overrides the column-generation options for non-exact specs;
	// zero value selects the solver defaults used by vlp.Build.
	CG core.CGOptions
}

func (c Config) withDefaults() Config {
	if c.CacheSize <= 0 {
		c.CacheSize = 16
	}
	if c.MaxSolves <= 0 {
		c.MaxSolves = 2
	}
	if c.SolveWait <= 0 {
		c.SolveWait = 2 * time.Minute
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.CG.Xi == 0 && c.CG.RelGap == 0 {
		c.CG = core.CGOptions{Xi: -0.05, RelGap: 0.02}
	}
	return c
}

// entry is one cached mechanism with its concurrency-safe sampler.
type entry struct {
	key       string
	prob      *core.Problem
	mech      *core.Mechanism
	etdd      float64
	bound     float64
	solveTime time.Duration
	served    atomic.Int64

	// sampleMu guards rng: mechanism rows are immutable, the RNG stream
	// is the only mutable sampler state.
	sampleMu chanMutex
	rng      *rand.Rand
}

// chanMutex is a mutex whose Lock can be abandoned on context
// cancellation, so a request deadline also bounds time spent queueing
// for a popular mechanism's sampler.
type chanMutex chan struct{}

func newChanMutex() chanMutex { return make(chanMutex, 1) }

func (m chanMutex) lock(ctx context.Context) error {
	select {
	case m <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (m chanMutex) unlock() { <-m }

// sample obfuscates one true location under the entry's mechanism.
func (e *entry) sample(ctx context.Context, truth roadnet.Location) (roadnet.Location, error) {
	if err := e.sampleMu.lock(ctx); err != nil {
		return roadnet.Location{}, err
	}
	defer e.sampleMu.unlock()
	obf := e.mech.Sample(e.rng, truth)
	e.served.Add(1)
	return obf, nil
}

// Service errors mapped to HTTP statuses by the handlers.
var (
	// ErrBusy reports that the in-flight solve limit is reached; clients
	// should back off and retry (429).
	ErrBusy = errors.New("server: solve capacity exhausted, retry later")
	// ErrClosed reports that the server is shutting down (503).
	ErrClosed = errors.New("server: shutting down")
)

// Server is the obfuscation service. Create with New; all methods are
// safe for concurrent use.
type Server struct {
	cfg    Config
	cache  *mechCache
	flight *group
	slots  chan struct{} // admission gate for cold solves
	stats  *stats
	closed atomic.Bool
	seq    atomic.Int64 // per-solve sampler seed offset

	// solveFn builds the entry for a validated spec; tests substitute a
	// stub to count and pace solves deterministically.
	solveFn func(spec *serial.SolveSpec) (*entry, error)
}

// New returns a ready-to-serve Server.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:    cfg,
		cache:  newMechCache(cfg.CacheSize),
		flight: newGroup(),
		slots:  make(chan struct{}, cfg.MaxSolves),
		stats:  &stats{},
	}
	s.solveFn = s.solve
	return s
}

// mechanismFor returns the cached mechanism for spec, solving it on a
// miss. The second result reports whether the request was served from
// cache (joining an in-flight solve counts as a miss).
func (s *Server) mechanismFor(ctx context.Context, spec *serial.SolveSpec) (*entry, bool, error) {
	key := spec.Digest()
	if e, ok := s.cache.get(key); ok {
		s.stats.hit()
		return e, true, nil
	}
	s.stats.miss()
	if s.closed.Load() {
		return nil, false, ErrClosed
	}
	ctx, cancel := context.WithTimeout(ctx, s.cfg.SolveWait)
	defer cancel()
	e, err := s.flight.do(ctx, key, func() (*entry, error) {
		// Double-check under singleflight: a previous flight may have
		// populated the cache between our miss and becoming leader.
		if e, ok := s.cache.get(key); ok {
			return e, nil
		}
		if s.closed.Load() {
			return nil, ErrClosed
		}
		select {
		case s.slots <- struct{}{}:
		default:
			s.stats.reject()
			return nil, ErrBusy
		}
		defer func() { <-s.slots }()
		start := time.Now()
		e, err := s.solveFn(spec)
		if err != nil {
			s.stats.solveFailed()
			return nil, err
		}
		e.key = key
		e.solveTime = time.Since(start)
		evicted := s.cache.add(key, e)
		s.stats.solved(e.solveTime, evicted)
		return e, nil
	})
	if err != nil {
		return nil, false, err
	}
	return e, false, nil
}

// solve runs the full offline pipeline for a validated spec:
// discretise, assemble D-VLP, solve by column generation, then enforce
// the Geo-I invariant on the result.
func (s *Server) solve(spec *serial.SolveSpec) (*entry, error) {
	g, err := spec.Network.ToGraph()
	if err != nil {
		return nil, err
	}
	part, err := discretize.New(g, spec.Delta)
	if err != nil {
		return nil, err
	}
	var priorP, priorQ []float64
	if len(spec.Prior) > 0 {
		priorP, priorQ = spec.Prior, spec.Prior
	}
	if len(spec.TaskPrior) > 0 {
		priorQ = spec.TaskPrior
	}
	pr, err := core.NewProblem(part, core.Config{
		Epsilon: spec.Epsilon,
		Radius:  spec.Radius,
		PriorP:  priorP,
		PriorQ:  priorQ,
	})
	if err != nil {
		return nil, err
	}
	opts := s.cfg.CG
	if spec.Exact {
		opts = core.CGOptions{Xi: 0}
	}
	res, err := core.SolveCG(pr, opts)
	if err != nil {
		return nil, err
	}
	mech, etdd, err := pr.EnforceGeoI(res.Mechanism, geoITol)
	if err != nil {
		return nil, err
	}
	return &entry{
		prob:     pr,
		mech:     mech,
		etdd:     etdd,
		bound:    res.LowerBound,
		sampleMu: newChanMutex(),
		rng:      rand.New(rand.NewSource(s.cfg.Seed + s.seq.Add(1))),
	}, nil
}

// Shutdown stops admitting new solves and drains the in-flight ones
// (their results still land in the cache for a possible restart-free
// resume). It returns ctx.Err() if the drain outlives the context; the
// solves keep running regardless.
func (s *Server) Shutdown(ctx context.Context) error {
	s.closed.Store(true)
	done := make(chan struct{})
	go func() {
		s.flight.wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Stats snapshots the service counters and cached mechanisms.
func (s *Server) Stats() StatsSnapshot { return s.stats.snapshot(s.cache) }

// Package server implements the vlpserved obfuscation service: a
// long-lived HTTP front end over the D-VLP solver that exploits the
// offline/online split of location-privacy mechanisms — a column-
// generation solve is expensive but its result is a reusable K×K matrix,
// so the server solves each (network, params) spec once, caches the
// mechanism in a bounded LRU keyed by the spec's content digest, and
// serves obfuscation requests from the cache at sampling cost.
//
// Concurrency contract:
//
//   - concurrent requests for the same spec are deduplicated
//     singleflight-style: one solve runs, everyone shares its result;
//     with a coalescing window configured the flight additionally holds
//     the solve back briefly so a same-digest burst shares one solve-
//     slot acquisition;
//   - serving is two disjoint admission tiers: cold solves pass the
//     solve pool (past SolvePool slots the request is rejected with 429
//     so load cannot pile up behind the solver), while sampling passes
//     the separate serve pool — cached obfuscation never queues behind
//     cold solves, so cached tail latency is isolated from solver
//     saturation;
//   - every cached mechanism carries its own seeded RNG behind a mutex,
//     so obfuscation is safe from any number of handler goroutines;
//   - served mechanisms are re-verified against the full (ε, r)-Geo-I
//     constraint set and repaired if solver tolerances left a residue
//     (core.Problem.EnforceGeoI) — the service never hands out samples
//     from a mechanism that violates the guarantee;
//   - Shutdown drains in-flight solves; past the drain budget it cancels
//     them and the ladder banks their incumbents.
//
// Failure posture — the degradation ladder. A solve is never
// all-or-nothing: when full column generation cannot complete (per-solve
// deadline, client abandonment, shutdown drain, numeric panic or solver
// error) the server degrades along
//
//	optimal CG → best incumbent of the interrupted run → ε/2 exponential mechanism
//
// with every rung repaired to exact Geo-I feasibility before serving.
// The privacy guarantee is identical on every rung; only ETDD degrades.
// Entries carry their quality tier (serial.Quality*), degraded entries
// are re-solved in the background and promoted when the full solve
// succeeds, and /stats exposes degraded_serves, cancelled_solves,
// panic_recoveries and upgrades.
package server

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/discretize"
	"repro/internal/roadnet"
	"repro/internal/serial"
	"repro/internal/store"
)

// geoITol is the violation ceiling enforced on every served mechanism;
// an order of magnitude below the 1e-9 the service advertises.
const geoITol = 1e-10

// Config tunes a Server. The zero value selects sensible defaults.
type Config struct {
	// CacheSize bounds the mechanism LRU (default 16).
	CacheSize int
	// MaxSolves bounds concurrently running cold solves; requests whose
	// spec needs a solve past this limit receive 429 (default 2).
	// Deprecated alias for SolvePool: when both are set, SolvePool wins.
	MaxSolves int
	// SolvePool bounds concurrently running cold solves (the solve
	// tier); requests whose spec needs a solve past this limit receive
	// 429. Zero falls back to MaxSolves, then to the default of 2.
	SolvePool int
	// ServePool bounds concurrently sampling obfuscate requests (the
	// serve tier, default 32). The serve pool is disjoint from the solve
	// pool by construction: cached obfuscation never queues behind cold
	// solves, which is what keeps cached tail latency flat while the
	// solver saturates.
	ServePool int
	// ServeQueue bounds how many requests may wait for a serve-pool slot
	// before the gate sheds load with 429 (default 8×ServePool).
	ServeQueue int
	// CoalesceWindow holds a cold solve's flight open for this long
	// before the solve starts, so a burst of same-digest requests
	// arriving within the window coalesces into one solve and one
	// solve-slot acquisition. Zero (the default) disables the batching
	// delay: requests still coalesce for the duration of the solve
	// itself, classic singleflight.
	CoalesceWindow time.Duration
	// SolveWait caps how long a request waits for a cold solve before
	// giving up with 504; the solve itself keeps running (until its own
	// deadline or abandonment) and its result lands in the cache
	// (default 2 minutes).
	SolveWait time.Duration
	// SolveDeadline caps the wall time of one column-generation solve.
	// A solve that outlives it is cancelled and degrades to the best
	// incumbent (or the exponential fallback) instead of erroring.
	// Zero means no per-solve deadline: only abandonment and shutdown
	// cancel a solve.
	SolveDeadline time.Duration
	// DisableUpgrade turns off the background re-solve that promotes
	// degraded cache entries to the optimal tier.
	DisableUpgrade bool
	// Seed is the base seed for per-mechanism sampler RNGs; each solved
	// mechanism gets Seed+n for the n-th solve, so a fixed Seed makes a
	// single-threaded request sequence reproducible (default 1).
	Seed int64
	// CG overrides the column-generation options for non-exact specs;
	// zero value selects the solver defaults used by vlp.Build.
	CG core.CGOptions

	// Store, when non-nil, makes mechanisms durable: completed entries
	// and mid-solve checkpoints are snapshotted to disk, cache misses
	// check the store before paying for a cold solve, and New replays
	// interrupted solves found on disk. Nil (the default) keeps the
	// server purely in-memory.
	Store *store.Store
	// CheckpointRounds is how many completed CG rounds pass between
	// durable mid-solve checkpoints when Store is set: 0 selects the
	// default (8), negative disables checkpointing while keeping entry
	// persistence.
	CheckpointRounds int

	// Fleet, when non-nil, runs this server as a member of a
	// shared-store serving fleet (see fleet.go): Store is required and
	// must be opened with store.OpenFleet so commits are fenced by the
	// lease protocol. Nil keeps the server solo.
	Fleet *FleetConfig
}

// defaultCheckpointRounds is the checkpoint cadence when a store is
// configured but CheckpointRounds is zero.
const defaultCheckpointRounds = 8

func (c Config) withDefaults() Config {
	if c.CacheSize <= 0 {
		c.CacheSize = 16
	}
	if c.SolvePool <= 0 {
		c.SolvePool = c.MaxSolves
	}
	if c.SolvePool <= 0 {
		c.SolvePool = 2
	}
	if c.ServePool <= 0 {
		c.ServePool = 32
	}
	if c.ServeQueue <= 0 {
		c.ServeQueue = 8 * c.ServePool
	}
	if c.SolveWait <= 0 {
		c.SolveWait = 2 * time.Minute
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.CG.Xi == 0 && c.CG.RelGap == 0 {
		// Default only the stop criteria; any other configured CG fields
		// (iteration caps, workers, observers) are kept.
		c.CG.Xi = -0.05
		c.CG.RelGap = 0.02
	}
	if c.Fleet != nil {
		c.Fleet = c.Fleet.withDefaults()
	}
	return c
}

// entry is one cached mechanism with its concurrency-safe sampler.
type entry struct {
	key       string
	prob      *core.Problem
	mech      *core.Mechanism
	etdd      float64
	bound     float64
	tier      string // serial.Quality* — the degradation rung served
	solveTime time.Duration
	served    atomic.Int64

	// state is the interrupted run's column pool when the entry is
	// degraded (nil on the optimal tier); the background upgrade resumes
	// column generation from it instead of restarting. Immutable.
	state *core.CGState

	// sampleMu guards rng: mechanism rows are immutable, the RNG stream
	// is the only mutable sampler state.
	sampleMu chanMutex
	rng      *rand.Rand
}

// chanMutex is a mutex whose Lock can be abandoned on context
// cancellation, so a request deadline also bounds time spent queueing
// for a popular mechanism's sampler.
type chanMutex chan struct{}

func newChanMutex() chanMutex { return make(chanMutex, 1) }

func (m chanMutex) lock(ctx context.Context) error {
	select {
	case m <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (m chanMutex) unlock() { <-m }

// sample obfuscates one true location under the entry's mechanism.
func (e *entry) sample(ctx context.Context, truth roadnet.Location) (roadnet.Location, error) {
	if err := e.sampleMu.lock(ctx); err != nil {
		return roadnet.Location{}, err
	}
	defer e.sampleMu.unlock()
	obf := e.mech.Sample(e.rng, truth)
	e.served.Add(1)
	return obf, nil
}

// Service errors mapped to HTTP statuses by the handlers.
var (
	// ErrBusy reports that the in-flight solve limit is reached; clients
	// should back off and retry (429).
	ErrBusy = errors.New("server: solve capacity exhausted, retry later")
	// ErrClosed reports that the server is shutting down (503).
	ErrClosed = errors.New("server: shutting down")
)

// Server is the obfuscation service. Create with New; all methods are
// safe for concurrent use.
type Server struct {
	cfg    Config
	cache  *mechCache
	flight *group
	slots  chan struct{} // admission gate for cold solves (the solve pool)
	// serveGate is the disjoint admission gate for the sampling tier:
	// obfuscate requests acquire a serve slot only after their mechanism
	// is in hand, so cached serving capacity is never consumed by — and
	// never queues behind — cold solves.
	serveGate *tierGate
	stats     *stats
	closed    atomic.Bool
	seq       atomic.Int64 // per-solve sampler seed offset

	// ctx is the root of every solve context; cancel fires when a
	// shutdown drain budget expires and tears down remaining solves.
	ctx    context.Context
	cancel context.CancelFunc
	// bg tracks background upgrade re-solves; upgrading dedupes them
	// per cache key.
	bg        sync.WaitGroup
	upgrading sync.Map

	// store is the durable snapshot store (nil without Config.Store);
	// resume maps spec digest → *core.CGState restored from an on-disk
	// checkpoint, consumed by solve as a warm-start and cleared when the
	// digest reaches the optimal tier.
	store  *store.Store
	resume sync.Map

	// Fleet state (see fleet.go): role is one of leaseSolo/Follower/
	// Leader, driven by the lease loop; fleetStop ends that loop at
	// shutdown (closed exactly once via fleetOnce).
	role      atomic.Int32
	fleetStop chan struct{}
	fleetOnce sync.Once
	// leaderURL caches the leaseholder's advertise URL (a string; ""
	// when unknown or when this process leads), refreshed by the lease
	// loop so the X-VLP-Leader response header never reads the store on
	// the request path.
	leaderURL atomic.Value
	// proxyBreaker is the circuit breaker on the follower→leader proxy
	// rung (breaker.go); nil outside fleet mode.
	proxyBreaker *breaker

	// storeDegraded latches when a durable write hits a full disk
	// (ENOSPC): while set, checkpoint writes are shed without touching
	// the disk and entry persists double as recovery probes — the first
	// one that lands clears the latch. Serving is never affected; the
	// latch only spends (or saves) durability I/O.
	storeDegraded atomic.Bool

	// solveFn builds the entry for a validated spec; tests substitute a
	// stub to count and pace solves deterministically.
	solveFn func(ctx context.Context, spec *serial.SolveSpec) (*entry, error)
}

// New returns a ready-to-serve Server. Background solves and upgrades
// are bounded by ctx: cancelling it (in addition to calling Close)
// aborts every in-flight solve the server owns.
func New(ctx context.Context, cfg Config) *Server {
	cfg = cfg.withDefaults()
	st := &stats{}
	s := &Server{
		cfg:       cfg,
		cache:     newMechCache(cfg.CacheSize),
		flight:    newGroup(&st.coalesced, &st.solveQueueDepth),
		slots:     make(chan struct{}, cfg.SolvePool),
		serveGate: newTierGate(cfg.ServePool, cfg.ServeQueue, &st.serveQueueDepth, &st.admissionRejects),
		stats:     st,
	}
	s.ctx, s.cancel = context.WithCancel(ctx)
	s.fleetStop = make(chan struct{})
	s.solveFn = s.solve
	s.store = cfg.Store
	switch {
	case s.store != nil && cfg.Fleet != nil:
		s.proxyBreaker = newBreaker(cfg.Fleet.BreakerThreshold, cfg.Fleet.BreakerCooldown)
		s.startFleet()
	case s.store != nil:
		s.recoverFromStore()
	}
	return s
}

// mechanismFor returns the cached mechanism for spec, solving it on a
// miss. The second result reports whether the request was served from
// cache (joining an in-flight solve counts as a miss).
func (s *Server) mechanismFor(ctx context.Context, spec *serial.SolveSpec) (*entry, bool, error) {
	key := spec.Digest()
	if e, ok := s.cache.get(key); ok {
		s.stats.hit()
		if e.tier != serial.QualityOptimal {
			s.stats.degraded()
		}
		return e, true, nil
	}
	s.stats.miss()
	if s.closed.Load() {
		return nil, false, ErrClosed
	}
	waitCtx, cancel := context.WithTimeout(ctx, s.cfg.SolveWait)
	defer cancel()
	e, err := s.flight.do(waitCtx, key, s.ctx, s.cfg.SolveDeadline, func(solveCtx context.Context) (*entry, error) {
		// Coalescing window: hold the flight open before committing to a
		// cold solve, so a burst of same-digest requests arriving within
		// the window joins this flight and the burst costs one solve slot
		// instead of a queue of rejected retries. The window runs before
		// the cache double-check, so whatever landed during it is used.
		if w := s.cfg.CoalesceWindow; w > 0 {
			if err := coalesceWait(solveCtx, w); err != nil {
				return nil, err
			}
		}
		// Double-check under singleflight: a previous flight may have
		// populated the cache between our miss and becoming leader.
		if cached, ok := s.cache.get(key); ok {
			return cached, nil
		}
		if s.closed.Load() {
			return nil, ErrClosed
		}
		// A durable snapshot beats a cold solve: consult the store before
		// competing for a solve slot, so restarts and LRU evictions cost a
		// disk read, not minutes of column generation.
		if warm := s.entryFromStore(key, spec); warm != nil {
			evicted := s.cache.add(key, warm)
			s.stats.storeLoaded(evicted)
			if warm.tier != serial.QualityOptimal {
				s.scheduleUpgrade(key, spec)
			}
			return warm, nil
		}
		// Followers never cold-solve: proxy to the leaseholder or serve
		// the fallback rung (fleet.go).
		if s.isFollower() {
			return s.followerEntry(solveCtx, key, spec)
		}
		select {
		case s.slots <- struct{}{}:
		default:
			s.stats.reject()
			return nil, ErrBusy
		}
		defer func() { <-s.slots }()
		start := time.Now()
		ent, err := s.solveFn(solveCtx, spec)
		if err != nil {
			s.stats.solveFailed()
			return nil, err
		}
		ent.key = key
		ent.solveTime = time.Since(start)
		evicted := s.cache.add(key, ent)
		s.stats.solved(ent.solveTime, evicted)
		s.persistEntry(key, spec, ent)
		if ent.tier != serial.QualityOptimal {
			s.scheduleUpgrade(key, spec)
		}
		return ent, nil
	})
	if err != nil {
		return nil, false, err
	}
	if e.tier != serial.QualityOptimal {
		s.stats.degraded()
	}
	return e, false, nil
}

// buildProblem runs the offline pipeline up to the assembled D-VLP
// instance: discretise the network and build costs plus reduced Geo-I
// constraints. Errors here are spec-level (422): no fallback mechanism
// can exist for a spec whose problem cannot even be assembled.
func (s *Server) buildProblem(spec *serial.SolveSpec) (*core.Problem, error) {
	g, err := spec.Network.ToGraph()
	if err != nil {
		return nil, err
	}
	part, err := discretize.New(g, spec.Delta)
	if err != nil {
		return nil, err
	}
	var priorP, priorQ []float64
	if len(spec.Prior) > 0 {
		priorP, priorQ = spec.Prior, spec.Prior
	}
	if len(spec.TaskPrior) > 0 {
		priorQ = spec.TaskPrior
	}
	return core.NewProblem(part, core.Config{
		Epsilon: spec.Epsilon,
		Radius:  spec.Radius,
		PriorP:  priorP,
		PriorQ:  priorQ,
	})
}

// solve runs the full offline pipeline for a validated spec and applies
// the degradation ladder: an optimal column-generation solve when it
// completes within its context, else the interrupted run's best
// incumbent, else the closed-form exponential mechanism. Every rung is
// repaired to exact Geo-I feasibility before it becomes servable, so
// the privacy guarantee never degrades — only ETDD does.
func (s *Server) solve(ctx context.Context, spec *serial.SolveSpec) (*entry, error) {
	pr, err := s.buildProblem(spec)
	if err != nil {
		return nil, err
	}
	opts := s.cfg.CG
	if spec.Exact {
		// Exact tightens only the stop criteria; the configured
		// iteration/worker/LP limits still apply. (A previous version
		// replaced the whole option set here, silently unbounding exact
		// solves.)
		opts.Xi = 0
		opts.RelGap = 0
	}
	// A degraded incumbent for this spec carries the interrupted run's
	// column pool; resume column generation from it rather than restart.
	// (Only the background upgrade and post-eviction re-solves can see a
	// cached entry here — a plain cache hit never reaches solve.) Second
	// choice: a checkpoint recovered from disk after a restart.
	key := spec.Digest()
	if prev, ok := s.cache.get(key); ok && prev.state != nil {
		opts.Resume = prev.state
	} else if st, ok := s.resume.Load(key); ok {
		opts.Resume = st.(*core.CGState)
	}
	// With a store configured, periodically snapshot the run's column
	// pool so a kill mid-solve costs at most CheckpointRounds rounds.
	if every := s.checkpointEvery(); every > 0 {
		opts.CheckpointEvery = every
		opts.OnState = func(iter int, st *core.CGState) {
			s.writeCheckpoint(spec, iter+1, st)
		}
	}
	res, solveErr := core.SolveCGCtx(ctx, pr, opts)

	tier := serial.QualityOptimal
	var mech *core.Mechanism
	var bound float64
	switch {
	case solveErr == nil:
		mech, bound = res.Mechanism, res.LowerBound
	case isCancellation(solveErr):
		s.stats.cancelled()
		if res != nil && res.Mechanism != nil {
			tier = serial.QualityIncumbent
			mech, bound = res.Mechanism, res.LowerBound
		} else {
			// Cancelled before a first master round completed: no
			// incumbent exists yet.
			tier = serial.QualityFallback
		}
	default:
		var pe *core.PanicError
		if errors.As(solveErr, &pe) {
			s.stats.panicRecovered()
		}
		tier = serial.QualityFallback
	}

	var served *core.Mechanism
	var etdd float64
	if mech != nil {
		served, etdd, err = pr.EnforceGeoI(mech, geoITol)
		if err != nil {
			// Repair failure is one more rung down, not a request error.
			served, tier = nil, serial.QualityFallback
		}
	}
	if served == nil {
		// Bottom rung: the ε/2 exponential mechanism is strictly
		// feasible by construction; EnforceGeoI verifies that once more
		// before the entry becomes servable.
		served, etdd, err = pr.EnforceGeoI(pr.ExponentialMechanism(), geoITol)
		if err != nil {
			return nil, err
		}
		bound = 0
	}
	e := &entry{
		prob:     pr,
		mech:     served,
		etdd:     etdd,
		bound:    bound,
		tier:     tier,
		sampleMu: newChanMutex(),
		rng:      rand.New(rand.NewSource(s.cfg.Seed + s.seq.Add(1))),
	}
	if tier != serial.QualityOptimal && res != nil && res.State != nil {
		// Keep the interrupted run's pool so the upgrade re-solve starts
		// where this one stopped.
		e.state = res.State
	}
	return e, nil
}

// coalesceWait sleeps the coalescing window, abandoning the wait (and
// the flight) if the solve context ends first.
func coalesceWait(ctx context.Context, w time.Duration) error {
	t := time.NewTimer(w)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// isCancellation reports whether err is a context cancellation or
// deadline expiry (possibly wrapped).
func isCancellation(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// scheduleUpgrade starts (at most one per key) a background re-solve of
// a spec whose cached entry is degraded, promoting the entry when the
// unrestricted solve reaches the optimal tier. The upgrade runs on the
// server's root context only — no per-solve deadline and no waiting
// client to abandon it — so its sole interruption is shutdown.
func (s *Server) scheduleUpgrade(key string, spec *serial.SolveSpec) {
	// Followers skip upgrades entirely: they could not commit the result
	// (stale fence) and the leader re-solves degraded entries itself.
	if s.cfg.DisableUpgrade || s.closed.Load() || s.isFollower() {
		return
	}
	if _, loaded := s.upgrading.LoadOrStore(key, struct{}{}); loaded {
		return
	}
	s.bg.Add(1)
	go func() {
		defer s.bg.Done()
		defer s.upgrading.Delete(key)
		start := time.Now()
		e, err := s.solveFn(s.ctx, spec)
		if err != nil || e.tier != serial.QualityOptimal {
			return // keep serving the degraded entry
		}
		e.key = key
		e.solveTime = time.Since(start)
		s.cache.add(key, e)
		s.stats.upgraded()
		s.persistEntry(key, spec, e)
	}()
}

// BeginShutdown marks the server as draining: new work (and /healthz,
// so load balancers stop routing here) answers 503 while in-flight
// solves continue. The fleet lease loop is told to stop — it releases
// the lease on exit so a peer is elected promptly. Call it before
// draining the HTTP listener.
func (s *Server) BeginShutdown() {
	s.closed.Store(true)
	s.fleetOnce.Do(func() { close(s.fleetStop) })
}

// Draining reports whether shutdown has begun.
func (s *Server) Draining() bool { return s.closed.Load() }

// Shutdown stops admitting new solves and drains the in-flight and
// background ones (their results still land in the cache for a possible
// restart-free resume). If the drain budget expires first, every
// remaining solve is cancelled outright — the degradation ladder banks
// each one's incumbent within roughly one master round — and Shutdown
// returns ctx.Err() once they have stopped.
func (s *Server) Shutdown(ctx context.Context) error {
	s.BeginShutdown()
	done := make(chan struct{})
	go func() {
		s.flight.wait()
		s.bg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.cancel()
		<-done
		return ctx.Err()
	}
}

// Stats snapshots the service counters and cached mechanisms.
func (s *Server) Stats() StatsSnapshot {
	var fence, quarGC uint64
	if s.store != nil {
		fence = s.store.Fence()
		quarGC = s.store.QuarantineGCBytes()
	}
	var breakerState string
	var breakerTrips uint64
	if s.proxyBreaker != nil {
		breakerState, breakerTrips = s.proxyBreaker.snapshot()
	}
	return s.stats.snapshot(s.cache, s.leaseState(), fence, breakerState, breakerTrips, quarGC)
}

package server

import (
	"context"
	"fmt"
	"sync"
)

// call is one in-flight solve shared by every request for its key.
type call struct {
	done chan struct{}
	val  *entry
	err  error
}

// group deduplicates concurrent solves per key, singleflight-style: the
// first request for a key becomes the leader and runs the solve in its
// own goroutine; followers block on the shared result (or their own
// context). The solve goroutine is detached from the leader's request so
// a caller that times out does not abort work other callers — and the
// cache — still want; graceful shutdown waits for these goroutines via
// wait.
type group struct {
	mu sync.Mutex
	m  map[string]*call
	wg sync.WaitGroup
}

func newGroup() *group { return &group{m: make(map[string]*call)} }

// do returns the result of fn for key, running fn at most once across
// all concurrent callers of the same key. The key is forgotten once fn
// returns, so a failed solve (for example a backpressure rejection) can
// be retried by later requests.
func (g *group) do(ctx context.Context, key string, fn func() (*entry, error)) (*entry, error) {
	g.mu.Lock()
	if c, ok := g.m[key]; ok {
		g.mu.Unlock()
		return awaitCall(ctx, c)
	}
	c := &call{done: make(chan struct{})}
	g.m[key] = c
	g.wg.Add(1)
	g.mu.Unlock()

	go func() {
		defer func() {
			if r := recover(); r != nil {
				c.val, c.err = nil, fmt.Errorf("server: solve panicked: %v", r)
			}
			g.mu.Lock()
			delete(g.m, key)
			g.mu.Unlock()
			close(c.done)
			g.wg.Done()
		}()
		c.val, c.err = fn()
	}()
	return awaitCall(ctx, c)
}

func awaitCall(ctx context.Context, c *call) (*entry, error) {
	select {
	case <-c.done:
		return c.val, c.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// wait blocks until every in-flight solve goroutine has finished.
func (g *group) wait() { g.wg.Wait() }

package server

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// call is one in-flight solve shared by every request for its key.
type call struct {
	done chan struct{}
	val  *entry
	err  error
	// cancel aborts the solve's context; fired by the last departing
	// waiter (abandonment), by the per-solve deadline, or by shutdown
	// drain expiry through the base context.
	cancel  context.CancelFunc
	waiters int // guarded by group.mu
}

// group deduplicates concurrent solves per key, singleflight-style: the
// first request for a key becomes the leader and starts the solve in its
// own goroutine; followers block on the shared result (or their own
// context). The solve goroutine is detached from any single request —
// one caller timing out does not abort work other callers still want —
// but it is not unkillable: its context is derived from the server's
// base context plus an optional per-solve deadline, and it is cancelled
// outright when the last waiter abandons the key. The solver's
// degradation ladder turns that cancellation into a served incumbent or
// fallback rather than a lost solve. Graceful shutdown waits for these
// goroutines via wait.
type group struct {
	mu sync.Mutex
	m  map[string]*call
	wg sync.WaitGroup

	// coalesced counts callers that joined an existing flight instead of
	// starting one; waiting gauges callers currently blocked on a flight
	// result. Both point into the server's lock-free stats struct.
	coalesced *atomic.Uint64
	waiting   *atomic.Int64
}

func newGroup(coalesced *atomic.Uint64, waiting *atomic.Int64) *group {
	return &group{m: make(map[string]*call), coalesced: coalesced, waiting: waiting}
}

// do returns the result of fn for key, running fn at most once across
// all concurrent callers of the same key. fn receives a context derived
// from base (cancelled additionally after timeout, if positive, and when
// the last waiter departs). The key is forgotten once fn returns, so a
// failed solve (for example a backpressure rejection) can be retried by
// later requests.
func (g *group) do(ctx context.Context, key string, base context.Context, timeout time.Duration, fn func(context.Context) (*entry, error)) (*entry, error) {
	g.mu.Lock()
	c, ok := g.m[key]
	if !ok {
		solveCtx, cancel := context.WithCancel(base)
		if timeout > 0 {
			solveCtx, cancel = context.WithTimeout(base, timeout)
		}
		c = &call{done: make(chan struct{}), cancel: cancel}
		g.m[key] = c
		g.wg.Add(1)
		go func() {
			defer func() {
				if r := recover(); r != nil {
					c.val, c.err = nil, fmt.Errorf("server: solve panicked: %v", r)
				}
				g.mu.Lock()
				delete(g.m, key)
				g.mu.Unlock()
				close(c.done)
				cancel()
				g.wg.Done()
			}()
			c.val, c.err = fn(solveCtx)
		}()
	}
	if ok {
		// Joining an existing flight is a coalesced request: with a
		// coalescing window configured, a burst of same-digest cold
		// requests shares the leader's single solve-slot acquisition.
		g.coalesced.Add(1)
	}
	c.waiters++
	g.mu.Unlock()

	g.waiting.Add(1)
	val, err := awaitCall(ctx, c)
	g.waiting.Add(-1)

	g.mu.Lock()
	c.waiters--
	abandoned := c.waiters == 0
	g.mu.Unlock()
	if abandoned {
		select {
		case <-c.done:
			// Solve already finished; nothing to abandon.
		default:
			// Every caller has left: stop burning CPU on an answer nobody
			// is waiting for. The interrupted solve still produces (and
			// caches) its best incumbent via the degradation ladder.
			c.cancel()
		}
	}
	return val, err
}

func awaitCall(ctx context.Context, c *call) (*entry, error) {
	select {
	case <-c.done:
		return c.val, c.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// wait blocks until every in-flight solve goroutine has finished.
func (g *group) wait() { g.wg.Wait() }

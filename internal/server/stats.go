package server

import (
	"sync"
	"time"
)

// stats aggregates service counters under one mutex; the hot obfuscate
// path touches it once per request.
type stats struct {
	mu         sync.Mutex
	hits       uint64
	misses     uint64
	solves     uint64
	rejected   uint64 // backpressure 429s issued by the solve gate
	evicted    uint64
	errors     uint64 // failed solves
	nDegraded  uint64 // serves from a non-optimal (incumbent/fallback) entry
	nCancelled uint64 // solves that observed context cancellation/deadline
	nPanics    uint64 // solver panics recovered into the ladder
	nUpgrades  uint64 // degraded entries promoted by a background re-solve
	solveTotal time.Duration
	solveMax   time.Duration

	// Durable-store counters.
	storeWrites  uint64 // entry snapshots committed to disk
	storeLoads   uint64 // cache misses answered from disk instead of a solve
	storeLoadErr uint64 // snapshot loads that failed (corrupt or I/O)
	nQuarantined uint64 // corrupt snapshots moved aside, scan + load paths
	nRecovered   uint64 // interrupted solves re-enqueued from checkpoints
	ckptWrites   uint64 // mid-solve checkpoints committed to disk
}

func (s *stats) hit() {
	s.mu.Lock()
	s.hits++
	s.mu.Unlock()
}

func (s *stats) miss() {
	s.mu.Lock()
	s.misses++
	s.mu.Unlock()
}

func (s *stats) reject() {
	s.mu.Lock()
	s.rejected++
	s.mu.Unlock()
}

func (s *stats) solveFailed() {
	s.mu.Lock()
	s.errors++
	s.mu.Unlock()
}

func (s *stats) degraded() {
	s.mu.Lock()
	s.nDegraded++
	s.mu.Unlock()
}

func (s *stats) cancelled() {
	s.mu.Lock()
	s.nCancelled++
	s.mu.Unlock()
}

func (s *stats) panicRecovered() {
	s.mu.Lock()
	s.nPanics++
	s.mu.Unlock()
}

func (s *stats) upgraded() {
	s.mu.Lock()
	s.nUpgrades++
	s.mu.Unlock()
}

func (s *stats) storeWrote() {
	s.mu.Lock()
	s.storeWrites++
	s.mu.Unlock()
}

func (s *stats) storeLoaded(evicted int) {
	s.mu.Lock()
	s.storeLoads++
	s.evicted += uint64(evicted)
	s.mu.Unlock()
}

func (s *stats) storeLoadFailed(quarantined bool) {
	s.mu.Lock()
	s.storeLoadErr++
	if quarantined {
		s.nQuarantined++
	}
	s.mu.Unlock()
}

func (s *stats) scanQuarantined(n int) {
	s.mu.Lock()
	s.nQuarantined += uint64(n)
	s.mu.Unlock()
}

func (s *stats) recovered() {
	s.mu.Lock()
	s.nRecovered++
	s.mu.Unlock()
}

func (s *stats) checkpointWrote() {
	s.mu.Lock()
	s.ckptWrites++
	s.mu.Unlock()
}

func (s *stats) solved(d time.Duration, evicted int) {
	s.mu.Lock()
	s.solves++
	s.evicted += uint64(evicted)
	s.solveTotal += d
	if d > s.solveMax {
		s.solveMax = d
	}
	s.mu.Unlock()
}

// MechStats describes one cached mechanism in GET /stats.
type MechStats struct {
	Key     string  `json:"key"`
	K       int     `json:"k"`
	ETDD    float64 `json:"etdd"`
	Bound   float64 `json:"lower_bound"`
	SolveMs float64 `json:"solve_ms"`
	// Quality is the entry's degradation rung (serial.Quality*).
	Quality string `json:"quality"`
	// Served counts locations obfuscated with this mechanism.
	Served int64 `json:"served"`
}

// StatsSnapshot is the GET /stats payload.
type StatsSnapshot struct {
	CacheHits    uint64 `json:"cache_hits"`
	CacheMisses  uint64 `json:"cache_misses"`
	CacheLen     int    `json:"cache_len"`
	CacheEvicted uint64 `json:"cache_evicted"`
	Solves       uint64 `json:"solves"`
	SolveErrors  uint64 `json:"solve_errors"`
	Rejected     uint64 `json:"rejected"`
	// DegradedServes counts responses served from a non-optimal
	// (incumbent or fallback) mechanism; CancelledSolves counts solves
	// interrupted by deadline/abandonment/shutdown; PanicRecoveries
	// counts solver panics converted into ladder rungs; Upgrades counts
	// degraded entries promoted by a background re-solve.
	DegradedServes  uint64 `json:"degraded_serves"`
	CancelledSolves uint64 `json:"cancelled_solves"`
	PanicRecoveries uint64 `json:"panic_recoveries"`
	Upgrades        uint64 `json:"upgrades"`
	// Durability counters. StoreWrites/CheckpointWrites count snapshots
	// committed; StoreLoads counts cache misses answered warm from disk
	// (no solve ran); StoreLoadErrors counts snapshot loads that failed;
	// CorruptQuarantined counts files moved aside as corrupt across scan
	// and load paths; RecoveredSolves counts interrupted solves
	// re-enqueued from checkpoints after a restart.
	StoreWrites        uint64  `json:"store_writes"`
	StoreLoads         uint64  `json:"store_loads"`
	StoreLoadErrors    uint64  `json:"store_load_errors"`
	CorruptQuarantined uint64  `json:"corrupt_quarantined"`
	RecoveredSolves    uint64  `json:"recovered_solves"`
	CheckpointWrites   uint64  `json:"checkpoint_writes"`
	AvgSolveMs         float64 `json:"avg_solve_ms"`
	MaxSolveMs         float64 `json:"max_solve_ms"`
	// Mechanisms lists the cached mechanisms, most recently used first,
	// with their ETDD so operators can watch quality loss per network.
	Mechanisms []MechStats `json:"mechanisms"`
}

// snapshot captures the counters plus the current cache contents.
func (s *stats) snapshot(cache *mechCache) StatsSnapshot {
	s.mu.Lock()
	snap := StatsSnapshot{
		CacheHits:       s.hits,
		CacheMisses:     s.misses,
		CacheEvicted:    s.evicted,
		Solves:          s.solves,
		SolveErrors:     s.errors,
		Rejected:        s.rejected,
		DegradedServes:  s.nDegraded,
		CancelledSolves: s.nCancelled,
		PanicRecoveries: s.nPanics,
		Upgrades:        s.nUpgrades,

		StoreWrites:        s.storeWrites,
		StoreLoads:         s.storeLoads,
		StoreLoadErrors:    s.storeLoadErr,
		CorruptQuarantined: s.nQuarantined,
		RecoveredSolves:    s.nRecovered,
		CheckpointWrites:   s.ckptWrites,

		MaxSolveMs: float64(s.solveMax) / float64(time.Millisecond),
	}
	if s.solves > 0 {
		snap.AvgSolveMs = float64(s.solveTotal) / float64(s.solves) / float64(time.Millisecond)
	}
	s.mu.Unlock()

	entries := cache.entries()
	snap.CacheLen = len(entries)
	snap.Mechanisms = make([]MechStats, 0, len(entries))
	for _, e := range entries {
		snap.Mechanisms = append(snap.Mechanisms, MechStats{
			Key:     e.key,
			K:       e.mech.K(),
			ETDD:    e.etdd,
			Bound:   e.bound,
			SolveMs: float64(e.solveTime) / float64(time.Millisecond),
			Quality: e.tier,
			Served:  e.served.Load(),
		})
	}
	return snap
}

package server

import (
	"sync/atomic"
	"time"
)

// stats aggregates service counters. The hot obfuscate path touches it
// once per request, so the struct is lock-free by contract: every field
// is a sync/atomic type and every access goes through atomic methods —
// an invariant vlplint's atomicstats analyzer enforces mechanically (a
// plain uint64 field here, even mutex-protected, fails ci.sh).
type stats struct {
	hits       atomic.Uint64
	misses     atomic.Uint64
	solves     atomic.Uint64
	rejected   atomic.Uint64 // backpressure 429s issued by the solve gate
	evicted    atomic.Uint64
	errors     atomic.Uint64 // failed solves
	nDegraded  atomic.Uint64 // serves from a non-optimal (incumbent/fallback) entry
	nCancelled atomic.Uint64 // solves that observed context cancellation/deadline
	nPanics    atomic.Uint64 // solver panics recovered into the ladder
	nUpgrades  atomic.Uint64 // degraded entries promoted by a background re-solve
	solveTotal atomic.Int64  // cumulative solve wall time, nanoseconds
	solveMax   atomic.Int64  // longest single solve, nanoseconds

	// Serving-tier counters. The depth fields are gauges (incremented on
	// entry, decremented on exit) rather than monotonic counters: the
	// flight group and the serve gate hold pointers to them and account
	// for their own populations.
	coalesced        atomic.Uint64 // requests that joined an in-flight solve instead of starting one
	admissionRejects atomic.Uint64 // serve-gate 429s (cached-path admission, distinct from solve-gate rejected)
	solveQueueDepth  atomic.Int64  // requests currently waiting on a cold-solve flight
	serveQueueDepth  atomic.Int64  // requests currently queued or sampling inside the serve gate

	// Durable-store counters.
	storeWrites  atomic.Uint64 // entry snapshots committed to disk
	storeLoads   atomic.Uint64 // cache misses answered from disk instead of a solve
	storeLoadErr atomic.Uint64 // snapshot loads that failed (corrupt or I/O)
	nQuarantined atomic.Uint64 // corrupt snapshots moved aside, scan + load paths
	nRecovered   atomic.Uint64 // interrupted solves re-enqueued from checkpoints
	ckptWrites   atomic.Uint64 // mid-solve checkpoints committed to disk
	storeShedded atomic.Uint64 // durable writes failed or skipped while ENOSPC-degraded

	// Fleet counters (fleet.go). lease_state and fence_token in /stats
	// are not mirrored here: the server role flag and the store's fence
	// are their single sources of truth, passed into snapshot.
	leaseRenews  atomic.Uint64 // successful lease heartbeat renewals
	leaseLosses  atomic.Uint64 // demotions: a renew found the lease gone
	nProxied     atomic.Uint64 // follower misses answered by proxying to the leader
	refreshLoads atomic.Uint64 // entries the refresh loop pulled from the shared store
}

func (s *stats) hit()             { s.hits.Add(1) }
func (s *stats) miss()            { s.misses.Add(1) }
func (s *stats) reject()          { s.rejected.Add(1) }
func (s *stats) solveFailed()     { s.errors.Add(1) }
func (s *stats) degraded()        { s.nDegraded.Add(1) }
func (s *stats) cancelled()       { s.nCancelled.Add(1) }
func (s *stats) panicRecovered()  { s.nPanics.Add(1) }
func (s *stats) upgraded()        { s.nUpgrades.Add(1) }
func (s *stats) storeWrote()      { s.storeWrites.Add(1) }
func (s *stats) storeShed()       { s.storeShedded.Add(1) }
func (s *stats) recovered()       { s.nRecovered.Add(1) }
func (s *stats) checkpointWrote() { s.ckptWrites.Add(1) }

func (s *stats) leaseRenewed() { s.leaseRenews.Add(1) }
func (s *stats) leaseLost()    { s.leaseLosses.Add(1) }

func (s *stats) storeLoaded(evicted int) {
	s.storeLoads.Add(1)
	s.evicted.Add(uint64(evicted))
}

func (s *stats) proxied(evicted int) {
	s.nProxied.Add(1)
	s.evicted.Add(uint64(evicted))
}

func (s *stats) refreshLoaded(evicted int) {
	s.refreshLoads.Add(1)
	s.evicted.Add(uint64(evicted))
}

func (s *stats) storeLoadFailed(quarantined bool) {
	s.storeLoadErr.Add(1)
	if quarantined {
		s.nQuarantined.Add(1)
	}
}

func (s *stats) scanQuarantined(n int) {
	s.nQuarantined.Add(uint64(n))
}

func (s *stats) solved(d time.Duration, evicted int) {
	s.solves.Add(1)
	s.evicted.Add(uint64(evicted))
	s.solveTotal.Add(int64(d))
	// CAS max loop: racing solves each install their own duration only
	// while it still exceeds the published maximum.
	for {
		cur := s.solveMax.Load()
		if int64(d) <= cur || s.solveMax.CompareAndSwap(cur, int64(d)) {
			return
		}
	}
}

// MechStats describes one cached mechanism in GET /stats.
type MechStats struct {
	Key     string  `json:"key"`
	K       int     `json:"k"`
	ETDD    float64 `json:"etdd"`
	Bound   float64 `json:"lower_bound"`
	SolveMs float64 `json:"solve_ms"`
	// Quality is the entry's degradation rung (serial.Quality*).
	Quality string `json:"quality"`
	// Served counts locations obfuscated with this mechanism.
	Served int64 `json:"served"`
}

// StatsSnapshot is the GET /stats payload.
type StatsSnapshot struct {
	CacheHits    uint64 `json:"cache_hits"`
	CacheMisses  uint64 `json:"cache_misses"`
	CacheLen     int    `json:"cache_len"`
	CacheEvicted uint64 `json:"cache_evicted"`
	Solves       uint64 `json:"solves"`
	SolveErrors  uint64 `json:"solve_errors"`
	Rejected     uint64 `json:"rejected"`
	// DegradedServes counts responses served from a non-optimal
	// (incumbent or fallback) mechanism; CancelledSolves counts solves
	// interrupted by deadline/abandonment/shutdown; PanicRecoveries
	// counts solver panics converted into ladder rungs; Upgrades counts
	// degraded entries promoted by a background re-solve.
	DegradedServes  uint64 `json:"degraded_serves"`
	CancelledSolves uint64 `json:"cancelled_solves"`
	PanicRecoveries uint64 `json:"panic_recoveries"`
	Upgrades        uint64 `json:"upgrades"`
	// Serving-tier admission and coalescing. SolveQueueDepth and
	// ServeQueueDepth are instantaneous gauges (how many requests are
	// waiting on a cold-solve flight / inside the serve gate right now);
	// CoalescedRequests counts requests that joined an already in-flight
	// solve for their digest rather than starting one; AdmissionRejects
	// counts 429s issued by the serve gate — the solve gate's 429s stay
	// in Rejected, so the two backpressure sources are distinguishable.
	SolveQueueDepth   int64  `json:"solve_queue_depth"`
	ServeQueueDepth   int64  `json:"serve_queue_depth"`
	CoalescedRequests uint64 `json:"coalesced_requests"`
	AdmissionRejects  uint64 `json:"admission_rejects"`
	// Durability counters. StoreWrites/CheckpointWrites count snapshots
	// committed; StoreLoads counts cache misses answered warm from disk
	// (no solve ran); StoreLoadErrors counts snapshot loads that failed;
	// CorruptQuarantined counts files moved aside as corrupt across scan
	// and load paths; RecoveredSolves counts interrupted solves
	// re-enqueued from checkpoints after a restart.
	StoreWrites        uint64 `json:"store_writes"`
	StoreLoads         uint64 `json:"store_loads"`
	StoreLoadErrors    uint64 `json:"store_load_errors"`
	CorruptQuarantined uint64 `json:"corrupt_quarantined"`
	RecoveredSolves    uint64 `json:"recovered_solves"`
	CheckpointWrites   uint64 `json:"checkpoint_writes"`
	// StoreWriteShed counts durable writes failed or deliberately
	// skipped while the store was ENOSPC-degraded; QuarantineGCBytes is
	// the cumulative size the bounded quarantine sweeper has reclaimed.
	// Both zero in healthy steady state.
	StoreWriteShed    uint64  `json:"store_write_shed"`
	QuarantineGCBytes uint64  `json:"quarantine_gc_bytes"`
	AvgSolveMs        float64 `json:"avg_solve_ms"`
	MaxSolveMs        float64 `json:"max_solve_ms"`
	// Fleet membership. LeaseState is solo/leader/follower; FenceToken
	// is the lease fencing token stamped into this process's commits (0
	// while not leading); LeaseRenewals and LeaseLosses count heartbeat
	// outcomes; ProxiedSolves counts follower misses answered by
	// proxying the solve to the leader; RefreshLoads counts entries the
	// follower refresh loop pulled from the shared store.
	LeaseState    string `json:"lease_state"`
	FenceToken    uint64 `json:"fence_token"`
	LeaseRenewals uint64 `json:"lease_renewals"`
	LeaseLosses   uint64 `json:"lease_losses"`
	ProxiedSolves uint64 `json:"proxied_solves"`
	RefreshLoads  uint64 `json:"refresh_loads"`
	// ProxyBreakerState is the follower→leader proxy circuit breaker's
	// state (closed/open/half-open; empty outside fleet mode);
	// ProxyBreakerTrips counts how often it has opened.
	ProxyBreakerState string `json:"proxy_breaker_state,omitempty"`
	ProxyBreakerTrips uint64 `json:"proxy_breaker_trips"`
	// Mechanisms lists the cached mechanisms, most recently used first,
	// with their ETDD so operators can watch quality loss per network.
	Mechanisms []MechStats `json:"mechanisms"`
}

// snapshot captures the counters plus the current cache contents. Each
// counter is loaded independently, so a snapshot taken mid-request may
// be momentarily inconsistent across counters (hits vs. solves); that
// is fine for a monitoring endpoint and is the price of the lock-free
// request path.
func (s *stats) snapshot(cache *mechCache, leaseState string, fence uint64, breakerState string, breakerTrips, quarGC uint64) StatsSnapshot {
	solves := s.solves.Load()
	snap := StatsSnapshot{
		LeaseState:        leaseState,
		FenceToken:        fence,
		ProxyBreakerState: breakerState,
		ProxyBreakerTrips: breakerTrips,
		QuarantineGCBytes: quarGC,
		CacheHits:       s.hits.Load(),
		CacheMisses:     s.misses.Load(),
		CacheEvicted:    s.evicted.Load(),
		Solves:          solves,
		SolveErrors:     s.errors.Load(),
		Rejected:        s.rejected.Load(),
		DegradedServes:  s.nDegraded.Load(),
		CancelledSolves: s.nCancelled.Load(),
		PanicRecoveries: s.nPanics.Load(),
		Upgrades:        s.nUpgrades.Load(),

		SolveQueueDepth:   s.solveQueueDepth.Load(),
		ServeQueueDepth:   s.serveQueueDepth.Load(),
		CoalescedRequests: s.coalesced.Load(),
		AdmissionRejects:  s.admissionRejects.Load(),

		StoreWrites:        s.storeWrites.Load(),
		StoreLoads:         s.storeLoads.Load(),
		StoreLoadErrors:    s.storeLoadErr.Load(),
		CorruptQuarantined: s.nQuarantined.Load(),
		RecoveredSolves:    s.nRecovered.Load(),
		CheckpointWrites:   s.ckptWrites.Load(),
		StoreWriteShed:     s.storeShedded.Load(),

		LeaseRenewals: s.leaseRenews.Load(),
		LeaseLosses:   s.leaseLosses.Load(),
		ProxiedSolves: s.nProxied.Load(),
		RefreshLoads:  s.refreshLoads.Load(),

		MaxSolveMs: float64(s.solveMax.Load()) / float64(time.Millisecond),
	}
	if solves > 0 {
		snap.AvgSolveMs = float64(s.solveTotal.Load()) / float64(solves) / float64(time.Millisecond)
	}

	entries := cache.entries()
	snap.CacheLen = len(entries)
	snap.Mechanisms = make([]MechStats, 0, len(entries))
	for _, e := range entries {
		snap.Mechanisms = append(snap.Mechanisms, MechStats{
			Key:     e.key,
			K:       e.mech.K(),
			ETDD:    e.etdd,
			Bound:   e.bound,
			SolveMs: float64(e.solveTime) / float64(time.Millisecond),
			Quality: e.tier,
			Served:  e.served.Load(),
		})
	}
	return snap
}

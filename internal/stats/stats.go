// Package stats holds the small statistics helpers the experiment
// harness uses to summarise per-vehicle and per-run measurements: means,
// quantiles, box-plot five-number summaries and fixed-width histograms.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean; it returns NaN for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Std returns the sample standard deviation (n−1 denominator); it
// returns NaN for fewer than two values.
func Std(xs []float64) float64 {
	if len(xs) < 2 {
		return math.NaN()
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)-1))
}

// Min returns the smallest value; NaN for an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest value; NaN for an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) using linear interpolation
// between order statistics; NaN for an empty slice.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 || math.IsNaN(q) {
		return math.NaN()
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// BoxPlot is a five-number summary plus the mean, matching what the
// paper's box-plot figures display.
type BoxPlot struct {
	Min, Q1, Median, Q3, Max, Mean float64
	N                              int
}

// Summarize computes the box-plot summary of a sample.
func Summarize(xs []float64) BoxPlot {
	return BoxPlot{
		Min:    Min(xs),
		Q1:     Quantile(xs, 0.25),
		Median: Quantile(xs, 0.5),
		Q3:     Quantile(xs, 0.75),
		Max:    Max(xs),
		Mean:   Mean(xs),
		N:      len(xs),
	}
}

// String renders the summary on one line.
func (b BoxPlot) String() string {
	return fmt.Sprintf("n=%d min=%.4g q1=%.4g med=%.4g q3=%.4g max=%.4g mean=%.4g",
		b.N, b.Min, b.Q1, b.Median, b.Q3, b.Max, b.Mean)
}

// Histogram is a fixed-width histogram over [Lo, Hi).
type Histogram struct {
	Lo, Hi  float64
	Counts  []int
	Under   int // values below Lo
	Over    int // values at or above Hi
	Samples int
}

// NewHistogram builds a histogram of xs with the given bin count.
func NewHistogram(xs []float64, lo, hi float64, bins int) *Histogram {
	if bins <= 0 || hi <= lo {
		panic("stats: NewHistogram needs bins > 0 and hi > lo")
	}
	h := &Histogram{Lo: lo, Hi: hi, Counts: make([]int, bins)}
	w := (hi - lo) / float64(bins)
	for _, x := range xs {
		h.Samples++
		switch {
		case x < lo:
			h.Under++
		case x >= hi:
			h.Over++
		default:
			h.Counts[int((x-lo)/w)]++
		}
	}
	return h
}

// BinCenter returns the midpoint of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	return h.Lo + (float64(i)+0.5)*w
}

// Normalize sums to 1 over in-range bins, returning densities.
func (h *Histogram) Normalize() []float64 {
	in := h.Samples - h.Under - h.Over
	out := make([]float64, len(h.Counts))
	if in == 0 {
		return out
	}
	for i, c := range h.Counts {
		out[i] = float64(c) / float64(in)
	}
	return out
}

// RelChange returns (b − a)/a as a signed fraction — the quantity behind
// the paper's "X% lower/higher" statements. It returns NaN when a == 0.
func RelChange(a, b float64) float64 {
	if a == 0 {
		return math.NaN()
	}
	return (b - a) / a
}

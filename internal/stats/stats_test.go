package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestMeanStd(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if !almost(Mean(xs), 5) {
		t.Fatalf("mean = %v, want 5", Mean(xs))
	}
	if got := Std(xs); math.Abs(got-2.138089935) > 1e-6 {
		t.Fatalf("std = %v", got)
	}
	if !math.IsNaN(Mean(nil)) || !math.IsNaN(Std([]float64{1})) {
		t.Fatal("empty/short inputs must give NaN")
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 0}
	if Min(xs) != -1 || Max(xs) != 7 {
		t.Fatalf("min/max = %v/%v", Min(xs), Max(xs))
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ q, want float64 }{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5}, {0.1, 1.4},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); !almost(got, c.want) {
			t.Fatalf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Fatal("empty quantile must be NaN")
	}
}

func TestQuantileDoesNotMutate(t *testing.T) {
	xs := []float64{5, 1, 3}
	Quantile(xs, 0.5)
	if xs[0] != 5 || xs[1] != 1 || xs[2] != 3 {
		t.Fatalf("input mutated: %v", xs)
	}
}

func TestSummarize(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 100}
	b := Summarize(xs)
	if b.N != 5 || b.Min != 1 || b.Max != 100 || !almost(b.Median, 3) {
		t.Fatalf("summary wrong: %v", b)
	}
	if b.String() == "" {
		t.Fatal("empty String()")
	}
}

func TestQuantileOrderingProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		m := int(n%40) + 2
		xs := make([]float64, m)
		for i := range xs {
			xs[i] = rng.NormFloat64() * 10
		}
		qs := []float64{0, 0.1, 0.25, 0.5, 0.75, 0.9, 1}
		vals := make([]float64, len(qs))
		for i, q := range qs {
			vals[i] = Quantile(xs, q)
		}
		if !sort.Float64sAreSorted(vals) {
			return false
		}
		return vals[0] == Min(xs) && vals[len(vals)-1] == Max(xs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogram(t *testing.T) {
	xs := []float64{-1, 0, 0.5, 1.5, 2.5, 3, 99}
	h := NewHistogram(xs, 0, 3, 3)
	if h.Under != 1 || h.Over != 2 {
		t.Fatalf("under/over = %d/%d", h.Under, h.Over)
	}
	if h.Counts[0] != 2 || h.Counts[1] != 1 || h.Counts[2] != 1 {
		t.Fatalf("counts = %v", h.Counts)
	}
	if !almost(h.BinCenter(0), 0.5) {
		t.Fatalf("bin center = %v", h.BinCenter(0))
	}
	dens := h.Normalize()
	tot := 0.0
	for _, d := range dens {
		tot += d
	}
	if !almost(tot, 1) {
		t.Fatalf("densities sum to %v", tot)
	}
}

func TestRelChange(t *testing.T) {
	if !almost(RelChange(10, 9), -0.1) {
		t.Fatalf("RelChange(10,9) = %v", RelChange(10, 9))
	}
	if !math.IsNaN(RelChange(0, 1)) {
		t.Fatal("RelChange from 0 must be NaN")
	}
}

// Lease: the fleet's single-writer protocol. N processes share one
// snapshot directory; exactly one — the leader — may commit. Leadership
// is a TTL lease stored in the LEASE file, serialized by an exclusive
// flock on LEASE.lock (flock serializes across processes; the record
// itself is written temp→rename so readers never see a torn file).
//
// Fencing: every ownership change increments a monotonic token. The
// holder's token is stamped into each snapshot it commits, and commit
// re-checks the token against the lease file under the flock
// immediately before the rename — since an election also needs the
// flock, no new leader can appear between the check and the rename. A
// demoted leader's in-flight commit therefore loses the check, has its
// payload quarantined for forensics, and returns ErrStaleFence; the
// process keeps serving, it just stopped writing.
//
// The lease is soft state: if the holder dies, the TTL expires and the
// next TryAcquire wins with a higher token. Nothing ever blocks on a
// dead process.
package store

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"syscall"
	"time"

	"repro/internal/faultinject"
)

// Fault-injection sites for the lease protocol and fenced commits.
const (
	FaultSiteLeaseAcquire = "store/lease/acquire"
	FaultSiteLeaseRenew   = "store/lease/renew"
	FaultSiteLeaseRelease = "store/lease/release"
	FaultSiteLeaseRead    = "store/lease/read"
	FaultSiteLeaseWrite   = "store/lease/write"
	FaultSiteStaleFence   = "store/fence/stale"
)

const (
	leaseName     = "LEASE"
	leaseLockName = "LEASE.lock"
)

// monoStart anchors the default monotonic clock for the lease guard.
// time.Since reads Go's monotonic reading, so SIGSTOP pauses, GC stalls
// and wall-clock steps all show up as elapsed time here even when the
// wall clock claims otherwise.
var monoStart = time.Now()

// ErrStaleFence reports a commit attempted with a fencing token that no
// longer matches the lease file — the writer was demoted (or never
// elected). The payload has been quarantined, not served and not
// crashed on; the worst outcome is a re-solve by the current leader.
var ErrStaleFence = errors.New("store: stale fencing token")

// LeaseRecord is the on-disk lease state. Owner=="" means released;
// Token survives releases so it only ever increases.
type LeaseRecord struct {
	// Owner identifies the holding process (instance name). Empty when
	// the lease has been released cleanly.
	Owner string `json:"owner"`
	// URL is the holder's advertised base URL, so followers know where
	// to proxy solves.
	URL string `json:"url"`
	// Token is the fencing token: bumped on every ownership change,
	// never reused, stamped into every snapshot the holder commits.
	Token uint64 `json:"token"`
	// ExpiresUnixNano is the lease deadline; past it any process may
	// take over (bumping Token).
	ExpiresUnixNano int64 `json:"expires_unix_nano"`
}

// Expired reports whether the lease deadline has passed at now.
func (r LeaseRecord) Expired(now time.Time) bool {
	return now.UnixNano() >= r.ExpiresUnixNano
}

// TryAcquire attempts to take the lease for owner (advertising url to
// followers) with the given TTL. It succeeds when the lease is free,
// expired, or already held by owner; on any ownership change the
// fencing token is incremented. On success the returned token is also
// installed as the store's commit fence.
func (s *Store) TryAcquire(owner, url string, ttl time.Duration) (uint64, bool, error) {
	if ferr := faultinject.At(FaultSiteLeaseAcquire); ferr != nil {
		return 0, false, fmt.Errorf("store: lease acquire: %w", ferr)
	}
	lock, err := s.lockLease()
	if err != nil {
		return 0, false, err
	}
	defer unlockLease(lock)
	rec, ok, err := s.readLease()
	if err != nil {
		return 0, false, err
	}
	now := s.now()
	if ok && rec.Owner != "" && rec.Owner != owner && !rec.Expired(now) {
		return 0, false, nil // held by a live peer
	}
	s.monoMu.Lock()
	monoLost := s.monoLost
	s.monoMu.Unlock()
	token := rec.Token
	if !ok || rec.Owner != owner || rec.Expired(now) || monoLost {
		// Ownership change — including re-taking our own expired lease,
		// where a commit from our pre-expiry self must not be trusted.
		// A monotonic-guard loss counts too: the wall-clock record may
		// still name us unexpired (clock stepped back, or nobody raced
		// us during the stall), but commits from before the stall must
		// be fenced out all the same.
		token++
	}
	next := LeaseRecord{Owner: owner, URL: url, Token: token, ExpiresUnixNano: now.Add(ttl).UnixNano()}
	if err := s.writeLease(next); err != nil {
		return 0, false, err
	}
	s.fence.Store(token)
	s.monoMu.Lock()
	s.monoValid, s.monoLost, s.monoDeadline = true, false, s.mono()+ttl
	s.monoMu.Unlock()
	return token, true, nil
}

// Renew extends the lease iff it is still held by owner with token. A
// false return means the lease was lost (a peer was elected, or the
// record vanished); the store's commit fence is cleared so in-flight
// writes fail fast instead of racing the new leader to the flock.
func (s *Store) Renew(owner string, token uint64, ttl time.Duration) (bool, error) {
	if ferr := faultinject.At(FaultSiteLeaseRenew); ferr != nil {
		return false, fmt.Errorf("store: lease renew: %w", ferr)
	}
	lock, err := s.lockLease()
	if err != nil {
		return false, err
	}
	defer unlockLease(lock)
	rec, ok, err := s.readLease()
	if err != nil {
		return false, err
	}
	if !ok || rec.Owner != owner || rec.Token != token {
		s.fence.CompareAndSwap(token, 0)
		s.monoMu.Lock()
		s.monoValid = false
		s.monoMu.Unlock()
		return false, nil
	}
	// An expired-but-untaken lease is still safely ours by the on-disk
	// protocol: any takeover would have bumped Token under the same
	// flock we now hold. But only the monotonic clock can prove the
	// renewal actually arrived in time — the wall clock may have
	// stepped backward (making the record look live) or we may have
	// been stopped for longer than the TTL. A renewal past its
	// monotonic deadline is treated as lease loss: fence cleared so
	// in-flight commits fail fast, and the loss is remembered so the
	// next TryAcquire bumps the token even though the record still
	// names us.
	s.monoMu.Lock()
	late := s.monoValid && s.mono() > s.monoDeadline
	if late {
		s.monoValid = false
		s.monoLost = true
	}
	s.monoMu.Unlock()
	if late {
		s.fence.CompareAndSwap(token, 0)
		return false, nil
	}
	rec.ExpiresUnixNano = s.now().Add(ttl).UnixNano()
	if err := s.writeLease(rec); err != nil {
		return false, err
	}
	s.monoMu.Lock()
	s.monoValid, s.monoDeadline = true, s.mono()+ttl
	s.monoMu.Unlock()
	return true, nil
}

// Release gives up the lease if held by owner with token. The record
// keeps its Token (cleared Owner only) so tokens stay monotonic across
// clean handoffs. Releasing a lease you no longer hold is a no-op.
func (s *Store) Release(owner string, token uint64) error {
	if ferr := faultinject.At(FaultSiteLeaseRelease); ferr != nil {
		return fmt.Errorf("store: lease release: %w", ferr)
	}
	lock, err := s.lockLease()
	if err != nil {
		return err
	}
	defer unlockLease(lock)
	s.fence.CompareAndSwap(token, 0)
	s.monoMu.Lock()
	s.monoValid = false
	s.monoMu.Unlock()
	rec, ok, err := s.readLease()
	if err != nil || !ok || rec.Owner != owner || rec.Token != token {
		return err
	}
	rec.Owner = ""
	rec.URL = ""
	return s.writeLease(rec)
}

// LeaseHolder returns the current lease record without taking the
// flock (the record is rename-atomic, so a lock-free read is always a
// consistent snapshot). ok is false when no lease record exists yet.
func (s *Store) LeaseHolder() (LeaseRecord, bool, error) {
	return s.readLease()
}

// Fence returns the fencing token this store stamps into commits; 0
// means the store holds no lease (followers, or single-process mode).
func (s *Store) Fence() uint64 { return s.fence.Load() }

// lockLease takes the cross-process exclusive lock serializing all
// lease mutations and the fenced-commit check. flock contends between
// file descriptions, so two goroutines of one process queue just like
// two processes do.
func (s *Store) lockLease() (*os.File, error) {
	f, err := os.OpenFile(filepath.Join(s.dir, leaseLockName), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: lease lock: %w", err)
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX); err != nil {
		f.Close()
		return nil, fmt.Errorf("store: lease lock: %w", err)
	}
	return f, nil
}

func unlockLease(f *os.File) {
	//lint:ignore errflow unlock on an fd we are about to close: Close drops the flock regardless, so a failed explicit LOCK_UN changes nothing
	_ = syscall.Flock(int(f.Fd()), syscall.LOCK_UN)
	f.Close()
}

// readLease loads the lease record. A missing file is (zero, false,
// nil); an unparsable record is an error — never a free lease, so a
// corrupted file cannot silently mint a second writer.
func (s *Store) readLease() (LeaseRecord, bool, error) {
	if ferr := faultinject.At(FaultSiteLeaseRead); ferr != nil {
		return LeaseRecord{}, false, fmt.Errorf("store: lease read: %w", ferr)
	}
	data, err := os.ReadFile(filepath.Join(s.dir, leaseName))
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return LeaseRecord{}, false, nil
		}
		return LeaseRecord{}, false, fmt.Errorf("store: lease read: %w", err)
	}
	var rec LeaseRecord
	if err := json.Unmarshal(data, &rec); err != nil {
		return LeaseRecord{}, false, fmt.Errorf("store: lease read: %w", err)
	}
	return rec, true, nil
}

// writeLease commits the lease record temp→rename so a concurrent
// LeaseHolder never observes a torn write. No fsync: the lease is soft
// state that TTL expiry regenerates after a crash.
func (s *Store) writeLease(rec LeaseRecord) error {
	if ferr := faultinject.At(FaultSiteLeaseWrite); ferr != nil {
		return fmt.Errorf("store: lease write: %w", ferr)
	}
	data, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("store: lease write: %w", err)
	}
	tmp := filepath.Join(s.dir, tmpPrefix+leaseName)
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("store: lease write: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(s.dir, leaseName)); err != nil {
		_ = os.Remove(tmp)
		return fmt.Errorf("store: lease write: %w", err)
	}
	return nil
}

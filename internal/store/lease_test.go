package store

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/serial"
)

func openFleetStore(t *testing.T, dir string) *Store {
	t.Helper()
	s, err := OpenFleet(dir)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestLeaseAcquireRenewRelease walks the happy path of the lease
// protocol across two stores sharing one directory: exclusive
// acquisition, holder discovery, renewal, clean release, and the token
// bump on handoff.
func TestLeaseAcquireRenewRelease(t *testing.T) {
	dir := t.TempDir()
	a := openFleetStore(t, dir)
	b := openFleetStore(t, dir)

	tok, ok, err := a.TryAcquire("a", "http://a", time.Minute)
	if err != nil || !ok || tok != 1 {
		t.Fatalf("first acquire: token %d ok %v err %v, want token 1", tok, ok, err)
	}
	if a.Fence() != 1 {
		t.Fatalf("fence not installed: %d", a.Fence())
	}

	// Re-acquiring our own live lease is idempotent: same token.
	tok2, ok, err := a.TryAcquire("a", "http://a", time.Minute)
	if err != nil || !ok || tok2 != tok {
		t.Fatalf("re-acquire: token %d ok %v err %v, want token %d", tok2, ok, err, tok)
	}

	// A peer cannot steal a live lease.
	if _, ok, err := b.TryAcquire("b", "http://b", time.Minute); err != nil || ok {
		t.Fatalf("steal succeeded: ok %v err %v", ok, err)
	}
	if b.Fence() != 0 {
		t.Fatalf("loser got a fence: %d", b.Fence())
	}

	// The holder is discoverable (proxy target for followers).
	rec, found, err := b.LeaseHolder()
	if err != nil || !found || rec.Owner != "a" || rec.URL != "http://a" || rec.Token != tok {
		t.Fatalf("holder record: %+v found %v err %v", rec, found, err)
	}

	if ok, err := a.Renew("a", tok, time.Minute); err != nil || !ok {
		t.Fatalf("renew by holder: ok %v err %v", ok, err)
	}
	if ok, err := b.Renew("b", tok, time.Minute); err != nil || ok {
		t.Fatalf("renew by non-holder succeeded: ok %v err %v", ok, err)
	}

	if err := a.Release("a", tok); err != nil {
		t.Fatal(err)
	}
	if a.Fence() != 0 {
		t.Fatalf("fence survived release: %d", a.Fence())
	}

	// After a clean release the peer wins, with a strictly larger token.
	tok3, ok, err := b.TryAcquire("b", "http://b", time.Minute)
	if err != nil || !ok || tok3 != tok+1 {
		t.Fatalf("acquire after release: token %d ok %v err %v, want %d", tok3, ok, err, tok+1)
	}
}

// TestLeaseExpiryElection: a dead leader's lease expires by TTL and a
// follower takes over with a bumped token; the late leader's renew
// fails and its fence is cleared.
func TestLeaseExpiryElection(t *testing.T) {
	dir := t.TempDir()
	a := openFleetStore(t, dir)
	b := openFleetStore(t, dir)
	base := time.Now()
	a.now = func() time.Time { return base }
	b.now = func() time.Time { return base }

	tok, ok, err := a.TryAcquire("a", "http://a", time.Minute)
	if err != nil || !ok {
		t.Fatalf("acquire: ok %v err %v", ok, err)
	}

	// One TTL later (leader silent — "killed"), the follower wins.
	b.now = func() time.Time { return base.Add(2 * time.Minute) }
	tok2, ok, err := b.TryAcquire("b", "http://b", time.Minute)
	if err != nil || !ok || tok2 != tok+1 {
		t.Fatalf("takeover: token %d ok %v err %v, want %d", tok2, ok, err, tok+1)
	}

	// The old leader comes back: renew must fail and clear its fence.
	if ok, err := a.Renew("a", tok, time.Minute); err != nil || ok {
		t.Fatalf("zombie renew succeeded: ok %v err %v", ok, err)
	}
	if a.Fence() != 0 {
		t.Fatalf("zombie kept fence %d", a.Fence())
	}

	// Re-taking one's own *expired* lease must also bump the token: a
	// commit from the pre-expiry epoch may still be in flight.
	b.now = func() time.Time { return base.Add(10 * time.Minute) }
	tok3, ok, err := b.TryAcquire("b", "http://b", time.Minute)
	if err != nil || !ok || tok3 != tok2+1 {
		t.Fatalf("self re-acquire after expiry: token %d ok %v err %v, want %d", tok3, ok, err, tok2+1)
	}
}

// TestFencedCommitStaleQuarantine is the stale-fence safety property:
// a demoted leader's in-flight commit is rejected with ErrStaleFence,
// its payload lands in quarantine (never the serving path), and the
// new leader's snapshot is untouched.
func TestFencedCommitStaleQuarantine(t *testing.T) {
	dir := t.TempDir()
	a := openFleetStore(t, dir)
	b := openFleetStore(t, dir)
	base := time.Now()
	a.now = func() time.Time { return base }
	b.now = func() time.Time { return base.Add(2 * time.Minute) }

	if _, ok, err := a.TryAcquire("a", "http://a", time.Minute); err != nil || !ok {
		t.Fatalf("acquire: ok %v err %v", ok, err)
	}
	e := testEntry(t, 30, 3)
	digest := e.Spec.Digest()
	if err := a.WriteEntry(e); err != nil {
		t.Fatal(err)
	}
	got, err := a.LoadEntry(digest)
	if err != nil || got.Fence != 1 {
		t.Fatalf("leader snapshot: fence %d err %v, want fence 1", got.Fence, err)
	}

	// b is elected after a's TTL lapses; a does not know yet.
	if _, ok, err := b.TryAcquire("b", "http://b", time.Minute); err != nil || !ok {
		t.Fatalf("takeover: ok %v err %v", ok, err)
	}

	// a's in-flight upgrade commit must lose the fence check.
	e2 := testEntry(t, 30, 3)
	e2.Tier = serial.QualityOptimal
	e2.State = nil
	if err := a.WriteEntry(e2); !errors.Is(err, ErrStaleFence) {
		t.Fatalf("stale commit: %v, want ErrStaleFence", err)
	}
	if a.Fence() != 0 {
		t.Fatalf("stale writer kept fence %d", a.Fence())
	}

	// The committed snapshot is still the old leader's valid one...
	got, err = b.LoadEntry(digest)
	if err != nil || got.Tier != serial.QualityIncumbent {
		t.Fatalf("serving snapshot after stale commit: tier %q err %v", got.Tier, err)
	}
	// ...and the rejected payload is quarantined for forensics.
	qnames, err := os.ReadDir(filepath.Join(dir, quarantineDir))
	if err != nil || len(qnames) == 0 {
		t.Fatalf("stale payload not quarantined: %v err %v", qnames, err)
	}

	// The new leader can commit the upgrade.
	if err := b.WriteEntry(e2); err != nil {
		t.Fatal(err)
	}
	got, err = b.LoadEntry(digest)
	if err != nil || got.Tier != serial.QualityOptimal || got.Fence != 2 {
		t.Fatalf("new leader commit: tier %q fence %d err %v", got.Tier, got.Fence, err)
	}
}

// TestFleetCommitWithoutLease: in fleet mode a store that never
// acquired the lease cannot commit at all.
func TestFleetCommitWithoutLease(t *testing.T) {
	s := openFleetStore(t, t.TempDir())
	e := testEntry(t, 31, 3)
	if err := s.WriteEntry(e); !errors.Is(err, ErrStaleFence) {
		t.Fatalf("fenceless commit: %v, want ErrStaleFence", err)
	}
	if _, err := s.LoadEntry(e.Spec.Digest()); !errors.Is(err, ErrNotFound) {
		t.Fatalf("fenceless commit became visible: %v", err)
	}
}

// TestStaleFenceFaultSite: the injected stale-fence site forces the
// rejection path on an otherwise-legitimate leader — prior snapshot
// intact, payload quarantined, and the leader recovers by re-acquiring.
func TestStaleFenceFaultSite(t *testing.T) {
	defer faultinject.Reset()
	s := openFleetStore(t, t.TempDir())
	if _, ok, err := s.TryAcquire("a", "http://a", time.Minute); err != nil || !ok {
		t.Fatalf("acquire: ok %v err %v", ok, err)
	}
	e := testEntry(t, 32, 3)
	digest := e.Spec.Digest()
	if err := s.WriteEntry(e); err != nil {
		t.Fatal(err)
	}

	faultinject.Set(FaultSiteStaleFence, faultinject.Fault{Err: errors.New("injected demotion"), Times: 1})
	e2 := testEntry(t, 32, 3)
	e2.Tier = serial.QualityOptimal
	e2.State = nil
	if err := s.WriteEntry(e2); !errors.Is(err, ErrStaleFence) {
		t.Fatalf("injected stale commit: %v, want ErrStaleFence", err)
	}
	got, err := s.LoadEntry(digest)
	if err != nil || got.Tier != serial.QualityIncumbent {
		t.Fatalf("prior snapshot damaged: tier %q err %v", got.Tier, err)
	}

	// The site cleared the fence; re-acquiring (same live lease, same
	// token) restores it and the retry commits.
	if _, ok, err := s.TryAcquire("a", "http://a", time.Minute); err != nil || !ok {
		t.Fatalf("re-acquire: ok %v err %v", ok, err)
	}
	if err := s.WriteEntry(e2); err != nil {
		t.Fatal(err)
	}
	if got, err = s.LoadEntry(digest); err != nil || got.Tier != serial.QualityOptimal {
		t.Fatalf("retry commit: tier %q err %v", got.Tier, err)
	}
}

// TestLeaseFaultSites arms every lease-protocol fault site and asserts
// each operation fails soft with the injected error — no panics, no
// partial lease state that blocks a later clean run.
func TestLeaseFaultSites(t *testing.T) {
	boom := errors.New("injected")
	ops := map[string]func(*Store) error{
		FaultSiteLeaseAcquire: func(s *Store) error { _, _, err := s.TryAcquire("x", "", time.Minute); return err },
		FaultSiteLeaseRenew:   func(s *Store) error { _, err := s.Renew("x", 1, time.Minute); return err },
		FaultSiteLeaseRelease: func(s *Store) error { return s.Release("x", 1) },
		FaultSiteLeaseRead:    func(s *Store) error { _, _, err := s.LeaseHolder(); return err },
		FaultSiteLeaseWrite:   func(s *Store) error { _, _, err := s.TryAcquire("x", "", time.Minute); return err },
	}
	for site, op := range ops {
		t.Run(strings.ReplaceAll(strings.TrimPrefix(site, "store/"), "/", "-"), func(t *testing.T) {
			defer faultinject.Reset()
			s := openFleetStore(t, t.TempDir())
			faultinject.Set(site, faultinject.Fault{Err: boom, Times: 1})
			if err := op(s); !errors.Is(err, boom) {
				t.Fatalf("%s armed: %v, want injected error", site, err)
			}
			// After the fault clears the protocol works from scratch.
			if _, ok, err := s.TryAcquire("x", "", time.Minute); err != nil || !ok {
				t.Fatalf("acquire after fault: ok %v err %v", ok, err)
			}
		})
	}
}

// TestLeaseCorruptRecordIsNotFreeLease: a corrupted lease record must
// read as an error, never as "lease free" — otherwise a flipped byte
// could mint a second writer.
func TestLeaseCorruptRecordIsNotFreeLease(t *testing.T) {
	dir := t.TempDir()
	s := openFleetStore(t, dir)
	if err := os.WriteFile(filepath.Join(dir, leaseName), []byte("{torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := s.TryAcquire("a", "", time.Minute); err == nil || ok {
		t.Fatalf("acquire over corrupt record: ok %v err %v, want error", ok, err)
	}
}

// TestFleetSingleWriter: with a leader and a fenced-out peer hammering
// the same digest concurrently, only the leader's commits land; every
// peer commit is ErrStaleFence and the final snapshot carries the
// leader's token.
func TestFleetSingleWriter(t *testing.T) {
	dir := t.TempDir()
	a := openFleetStore(t, dir)
	b := openFleetStore(t, dir)
	tok, ok, err := a.TryAcquire("a", "http://a", time.Minute)
	if err != nil || !ok {
		t.Fatalf("acquire: ok %v err %v", ok, err)
	}
	e := testEntry(t, 33, 3)
	digest := e.Spec.Digest()

	var wg sync.WaitGroup
	staleErrs := make([]error, 4)
	for g := 0; g < 4; g++ {
		wg.Add(2)
		go func(g int) {
			defer wg.Done()
			w := testEntry(t, 33, 3)
			w.ETDD = 0.5 + float64(g)/100
			if err := a.WriteEntry(w); err != nil {
				t.Errorf("leader write: %v", err)
			}
		}(g)
		go func(g int) {
			defer wg.Done()
			w := testEntry(t, 33, 3)
			w.ETDD = 0.9
			staleErrs[g] = b.WriteEntry(w)
		}(g)
	}
	wg.Wait()
	for g, err := range staleErrs {
		if !errors.Is(err, ErrStaleFence) {
			t.Fatalf("peer write %d: %v, want ErrStaleFence", g, err)
		}
	}
	got, err := a.LoadEntry(digest)
	if err != nil {
		t.Fatal(err)
	}
	if got.Fence != tok || got.ETDD == 0.9 {
		t.Fatalf("non-leader value committed: fence %d etdd %v", got.Fence, got.ETDD)
	}
}

// TestLeaseMonotonicGuard: the wall-clock record can lie (clock stepped
// back, or nobody raced us during a SIGSTOP), but the monotonic clock
// cannot. A renewal that arrives past its monotonic deadline must be
// treated as lease loss — fence cleared — and the next TryAcquire must
// bump the token even though the on-disk record still names us,
// unexpired.
func TestLeaseMonotonicGuard(t *testing.T) {
	dir := t.TempDir()
	s := openFleetStore(t, dir)
	var mono time.Duration
	s.mono = func() time.Duration { return mono }

	tok, ok, err := s.TryAcquire("a", "http://a", time.Minute)
	if err != nil || !ok {
		t.Fatalf("acquire: ok %v err %v", ok, err)
	}

	// A timely renew extends the monotonic deadline.
	mono = 30 * time.Second
	if ok, err := s.Renew("a", tok, time.Minute); err != nil || !ok {
		t.Fatalf("timely renew: ok %v err %v", ok, err)
	}

	// Stall past the TTL: the renewal is late by the monotonic clock.
	// s.now was never swapped, so the wall-clock record is unexpired and
	// still ours — the guard alone must detect the loss.
	mono = 30*time.Second + 61*time.Second
	if ok, err := s.Renew("a", tok, time.Minute); err != nil || ok {
		t.Fatalf("late renew succeeded: ok %v err %v", ok, err)
	}
	if s.Fence() != 0 {
		t.Fatalf("late renewer kept fence %d", s.Fence())
	}
	rec, found, err := s.LeaseHolder()
	if err != nil || !found || rec.Owner != "a" || rec.Expired(time.Now()) {
		t.Fatalf("precondition broken: record %+v found %v err %v, want unexpired and ours", rec, found, err)
	}

	// A commit from the pre-stall epoch may be in flight, so re-taking
	// the still-named lease must mint a fresh token.
	tok2, ok, err := s.TryAcquire("a", "http://a", time.Minute)
	if err != nil || !ok || tok2 != tok+1 {
		t.Fatalf("re-acquire after mono loss: token %d ok %v err %v, want %d", tok2, ok, err, tok+1)
	}

	// The guard is re-armed, not latched: timely renews work again.
	mono += 30 * time.Second
	if ok, err := s.Renew("a", tok2, time.Minute); err != nil || !ok {
		t.Fatalf("renew after re-acquire: ok %v err %v", ok, err)
	}
}

// TestLeaseMonotonicGuardBlocksCommit: after a monotonic-late renewal
// the fence is cleared, so an in-flight commit fails with ErrStaleFence
// instead of racing the (possibly elected) peer.
func TestLeaseMonotonicGuardBlocksCommit(t *testing.T) {
	dir := t.TempDir()
	s := openFleetStore(t, dir)
	var mono time.Duration
	s.mono = func() time.Duration { return mono }

	if _, ok, err := s.TryAcquire("a", "http://a", time.Minute); err != nil || !ok {
		t.Fatalf("acquire: ok %v err %v", ok, err)
	}
	mono = 2 * time.Minute
	if ok, err := s.Renew("a", s.Fence(), time.Minute); err != nil || ok {
		t.Fatalf("late renew succeeded: ok %v err %v", ok, err)
	}
	e := testEntry(t, 34, 3)
	if err := s.WriteEntry(e); !errors.Is(err, ErrStaleFence) {
		t.Fatalf("post-stall commit: %v, want ErrStaleFence", err)
	}
}

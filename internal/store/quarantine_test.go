package store

import (
	"os"
	"path/filepath"
	"testing"
	"time"
)

func quarNames(t *testing.T, dir string) map[string]bool {
	t.Helper()
	out := make(map[string]bool)
	des, err := os.ReadDir(filepath.Join(dir, quarantineDir))
	if err != nil {
		if os.IsNotExist(err) {
			return out
		}
		t.Fatal(err)
	}
	for _, de := range des {
		out[de.Name()] = true
	}
	return out
}

// TestQuarantineSweeperAgeAndCap: the sweeper removes age-expired files
// unconditionally, then prunes oldest-first down to the byte cap, and
// accounts every byte it frees.
func TestQuarantineSweeperAgeAndCap(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	qdir := filepath.Join(dir, quarantineDir)
	if err := os.MkdirAll(qdir, 0o755); err != nil {
		t.Fatal(err)
	}
	write := func(name string, size int, age time.Duration) {
		t.Helper()
		p := filepath.Join(qdir, name)
		if err := os.WriteFile(p, make([]byte, size), 0o644); err != nil {
			t.Fatal(err)
		}
		mt := time.Now().Add(-age)
		if err := os.Chtimes(p, mt, mt); err != nil {
			t.Fatal(err)
		}
	}
	write("ancient.mech", 100, 48*time.Hour) // past quarMaxAge
	write("middle.mech", 100, 2*time.Hour)
	write("fresh.mech", 100, time.Minute)

	// Age pass: only the expired file goes.
	s.sweepQuarantine()
	got := quarNames(t, dir)
	if got["ancient.mech"] || !got["middle.mech"] || !got["fresh.mech"] {
		t.Fatalf("after age sweep: %v", got)
	}
	if b := s.QuarantineGCBytes(); b != 100 {
		t.Fatalf("gc bytes after age sweep: %d, want 100", b)
	}

	// Cap pass: tighten the cap below the two survivors; the older one
	// goes first and the sweep stops at the cap.
	s.quarCap = 150
	s.sweepQuarantine()
	got = quarNames(t, dir)
	if got["middle.mech"] || !got["fresh.mech"] {
		t.Fatalf("after cap sweep: %v", got)
	}
	if b := s.QuarantineGCBytes(); b != 200 {
		t.Fatalf("gc bytes after cap sweep: %d, want 200", b)
	}
}

// TestQuarantineSweeperRunsOnScanAndInsert: corrupt files quarantined by
// a scan are themselves subject to the bounds — a later scan with the
// retention aged out removes them, so repeated corruption cannot grow
// the directory without limit.
func TestQuarantineSweeperRunsOnScanAndInsert(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "bogus.junk"), []byte("not a snapshot"), 0o644); err != nil {
		t.Fatal(err)
	}
	rep, err := s.Scan()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Quarantined != 1 {
		t.Fatalf("quarantined %d, want 1", rep.Quarantined)
	}
	if got := quarNames(t, dir); !got["bogus.junk"] {
		t.Fatalf("junk not quarantined: %v", got)
	}

	// Age everything out; the next insert-triggered sweep clears it.
	s.quarMaxAge = 0
	s.quarantine("nonexistent") // insert path: rename fails, sweep still runs
	if got := quarNames(t, dir); len(got) != 0 {
		t.Fatalf("aged-out quarantine survived: %v", got)
	}
	if b := s.QuarantineGCBytes(); b == 0 {
		t.Fatal("gc bytes not accounted")
	}
}

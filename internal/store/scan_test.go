package store

import (
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/faultinject"
	"repro/internal/serial"
)

// TestScanShortCircuitNoReread is the refresh-loop regression test:
// once a file has been scanned, an unchanged directory must never be
// re-read. Proven by arming the read fault site for the whole second
// scan — if Scan touched any file it would fail or drop entries.
func TestScanShortCircuitNoReread(t *testing.T) {
	defer faultinject.Reset()
	s := openTestStore(t)
	for seed := int64(40); seed < 43; seed++ {
		if err := s.WriteEntry(testEntry(t, seed, 3)); err != nil {
			t.Fatal(err)
		}
	}
	ck := testEntry(t, 43, 3)
	if err := s.WriteCheckpoint(&serial.StoredCheckpoint{Spec: ck.Spec, Rounds: 2, State: *ck.State}); err != nil {
		t.Fatal(err)
	}

	rep, err := s.Scan()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Loaded != 4 || len(rep.Delta) != 3 || len(rep.Entries) != 3 || len(rep.Checkpoints) != 1 {
		t.Fatalf("first scan: loaded %d delta %d entries %d ckpts %d", rep.Loaded, len(rep.Delta), len(rep.Entries), len(rep.Checkpoints))
	}

	// Nothing changed: the rescan must not read a single file.
	faultinject.Set(FaultSiteRead, faultinject.Fault{Err: errors.New("re-read!")})
	rep2, err := s.Scan()
	faultinject.Clear(FaultSiteRead)
	if err != nil {
		t.Fatalf("rescan hit the disk: %v", err)
	}
	if rep2.Loaded != 0 || len(rep2.Delta) != 0 {
		t.Fatalf("rescan of unchanged dir: loaded %d delta %d, want 0/0", rep2.Loaded, len(rep2.Delta))
	}
	if len(rep2.Entries) != 3 || len(rep2.Checkpoints) != 1 {
		t.Fatalf("rescan dropped cached results: entries %d ckpts %d", len(rep2.Entries), len(rep2.Checkpoints))
	}

	// A new commit surfaces as exactly one load, in Delta.
	e4 := testEntry(t, 44, 3)
	if err := s.WriteEntry(e4); err != nil {
		t.Fatal(err)
	}
	rep3, err := s.Scan()
	if err != nil {
		t.Fatal(err)
	}
	if rep3.Loaded != 1 || len(rep3.Delta) != 1 || rep3.Delta[0].Digest != e4.Spec.Digest() {
		t.Fatalf("scan after new commit: loaded %d delta %+v", rep3.Loaded, rep3.Delta)
	}
	if len(rep3.Entries) != 4 {
		t.Fatalf("scan after new commit: %d entries, want 4", len(rep3.Entries))
	}

	// An in-place upgrade (same name, new bytes) is also a delta.
	up := testEntry(t, 40, 3)
	up.Tier = serial.QualityOptimal
	up.State = nil
	if err := s.WriteEntry(up); err != nil {
		t.Fatal(err)
	}
	rep4, err := s.Scan()
	if err != nil {
		t.Fatal(err)
	}
	if rep4.Loaded != 1 || len(rep4.Delta) != 1 || rep4.Delta[0].Tier != serial.QualityOptimal {
		t.Fatalf("scan after upgrade: loaded %d delta %+v", rep4.Loaded, rep4.Delta)
	}

	// A vanished file falls out of the report.
	s.DeleteCheckpoint(ck.Spec.Digest())
	rep5, err := s.Scan()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep5.Checkpoints) != 0 || rep5.Loaded != 0 {
		t.Fatalf("scan after delete: ckpts %d loaded %d", len(rep5.Checkpoints), rep5.Loaded)
	}
}

// TestScanRefreshFaultSite: the refresh fault site fails Scan soft.
func TestScanRefreshFaultSite(t *testing.T) {
	defer faultinject.Reset()
	s := openTestStore(t)
	boom := errors.New("injected")
	faultinject.Set(FaultSiteRefresh, faultinject.Fault{Err: boom, Times: 1})
	if _, err := s.Scan(); !errors.Is(err, boom) {
		t.Fatalf("scan with refresh armed: %v, want injected error", err)
	}
	if _, err := s.Scan(); err != nil {
		t.Fatalf("scan after fault cleared: %v", err)
	}
}

// TestStoreTwoProcessQuarantine simulates two server processes (two
// Opens of one directory) fighting over the same digest while torn
// writes are injected: the committed file must always be one writer's
// whole value, corrupt files must be quarantined by exactly the
// discovering reader without tripping the other, and nothing panics.
func TestStoreTwoProcessQuarantine(t *testing.T) {
	defer faultinject.Reset()
	dir := t.TempDir()
	s1, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	e := testEntry(t, 50, 3)
	digest := e.Spec.Digest()

	// Half the writes die mid-write (torn temp files), spread across
	// both "processes" racing the same digest.
	faultinject.Set(FaultSiteShortWrite, faultinject.Fault{Err: errors.New("torn"), Times: 4})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		st := s1
		if g%2 == 1 {
			st = s2
		}
		go func(st *Store, g int) {
			defer wg.Done()
			w := testEntry(t, 50, 3)
			w.ETDD = 0.5 + float64(g)/100
			_ = st.WriteEntry(w) // torn writes are expected to error
		}(st, g)
	}
	wg.Wait()
	faultinject.Reset()

	// Whatever survived must be a whole, valid snapshot from one writer.
	got, err := s2.LoadEntry(digest)
	if err != nil {
		t.Fatalf("no valid snapshot after concurrent torn writes: %v", err)
	}
	if got.ETDD < 0.5 || got.ETDD > 0.58 {
		t.Fatalf("committed snapshot is no writer's value: ETDD %v", got.ETDD)
	}
	rep, err := s1.Scan()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Entries) != 1 || rep.Quarantined != 0 {
		t.Fatalf("scan after torn races: %+v", rep)
	}

	// Now plant a corrupt committed snapshot and have both processes
	// discover it at once: it must end up quarantined (not served, not
	// torn in half by the double rename), and both loaders must report
	// ErrCorrupt or ErrNotFound — never a panic or a served corruption.
	bad := testEntry(t, 51, 3)
	badData, err := serial.EncodeStoredEntry(bad)
	if err != nil {
		t.Fatal(err)
	}
	badData[len(badData)/2] ^= 0xFF
	badName := bad.Spec.Digest() + entryExt
	if err := os.WriteFile(filepath.Join(dir, badName), badData, 0o644); err != nil {
		t.Fatal(err)
	}
	errs := make(chan error, 2)
	for _, st := range []*Store{s1, s2} {
		go func(st *Store) {
			_, err := st.LoadEntry(bad.Spec.Digest())
			errs <- err
		}(st)
	}
	for i := 0; i < 2; i++ {
		if err := <-errs; !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrNotFound) {
			t.Fatalf("concurrent corrupt load: %v", err)
		}
	}
	if _, err := os.Stat(filepath.Join(dir, badName)); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("corrupt file still in the serving path after concurrent discovery")
	}
	if _, err := os.Stat(filepath.Join(dir, quarantineDir, badName)); err != nil {
		t.Fatalf("corrupt file not quarantined: %v", err)
	}
}

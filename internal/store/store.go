// Package store is the durable, crash-safe snapshot store behind the
// obfuscation service's mechanism cache. Two snapshot kinds live in one
// directory, both keyed by the solve spec's content digest:
//
//	<digest>.mech — a completed (possibly degraded) cache entry
//	<digest>.ckpt — a mid-solve checkpoint of the CG column pool
//
// Durability protocol: every write goes to a temp file in the same
// directory, is fsynced, atomically renamed over the final name, and the
// directory itself is fsynced — so a committed snapshot survives kill -9
// at any instant, and a crash mid-write leaves only ignorable temp
// debris, never a half-written committed file. Snapshots are versioned
// and SHA-256-checksummed by internal/serial; a file that fails
// checksum, version or semantic validation (including a digest that does
// not match its file name) is quarantined into a subdirectory — kept for
// forensics, removed from the serving path — and reported, never served
// and never fatal. The worst outcome of any corruption is a cold
// re-solve.
//
// Fault injection: the five I/O sites (write, short write, fsync,
// rename, read) carry faultinject points so the chaos suite can kill
// the protocol at every step and assert the recovery invariants.
package store

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/faultinject"
	"repro/internal/serial"
)

// Fault-injection sites visited by the store's I/O protocol.
const (
	FaultSiteWrite      = "store/write"
	FaultSiteShortWrite = "store/shortwrite"
	FaultSiteFsync      = "store/fsync"
	FaultSiteRename     = "store/rename"
	FaultSiteRead       = "store/read"
	FaultSiteQuarantine = "store/quarantine"
	FaultSiteRefresh    = "store/refresh"
	FaultSiteDirSync    = "store/dirsync"
	// FaultSiteQuarantineGC covers the bounded quarantine sweeper's
	// directory walk; an injected failure just defers the sweep.
	FaultSiteQuarantineGC = "store/quarantine/gc"
)

const (
	entryExt      = ".mech"
	checkpointExt = ".ckpt"
	tmpPrefix     = "tmp-"
	quarantineDir = "quarantine"

	// Quarantine retention bounds: files older than quarantineMaxAge are
	// swept, and the directory is kept under quarantineCapBytes
	// oldest-first. Repeated corruption (or a flapping demoted leader
	// endlessly fencing out commits) must not be able to fill the disk
	// with forensic payloads.
	quarantineCapBytes = int64(64 << 20)
	quarantineMaxAge   = 24 * time.Hour

	// debrisGrace is how old a temp file must be before Scan removes it
	// as crash debris. In a fleet, a peer may be mid-commit right now;
	// no live protocol run holds a temp file anywhere near this long.
	debrisGrace = time.Minute

	// scanSettle is the quiescence window for the directory-mtime
	// short-circuit: the cached listing is only trusted when the
	// directory had already been still for longer than the coarsest
	// filesystem mtime granularity at the previous walk.
	scanSettle = 2 * time.Second
)

// ErrNotFound reports that no committed snapshot exists for a digest.
var ErrNotFound = errors.New("store: snapshot not found")

// ErrCorrupt wraps every validation failure of a committed snapshot;
// the offending file has already been quarantined when a load returns
// it. errors.Is(err, ErrCorrupt) distinguishes "re-solve and move on"
// from real I/O trouble.
var ErrCorrupt = errors.New("store: corrupt snapshot")

// Store is a snapshot directory. All methods are safe for concurrent
// use by multiple goroutines of one process; the atomic-rename protocol
// additionally keeps concurrent writers of the same digest from ever
// exposing a torn file (last rename wins whole). In fleet mode (see
// OpenFleet) commits are additionally fenced by the lease protocol in
// lease.go, so of N processes sharing the directory only the current
// leaseholder can commit.
type Store struct {
	dir   string
	fleet bool
	// fence is the lease token stamped into commits; 0 when this
	// process holds no lease. Maintained by TryAcquire/Renew/Release.
	fence atomic.Uint64
	// now is the clock, swappable by tests for lease-expiry scenarios.
	now func() time.Time
	// mono is the monotonic clock backing the lease guard in lease.go,
	// swappable by tests for skew scenarios. Unlike now it cannot jump:
	// a renewal that arrives late by mono missed its deadline no matter
	// what the wall clock claims.
	mono func() time.Duration

	// Monotonic lease guard state (lease.go). monoDeadline is the
	// monotonic instant our lease expires; monoLost records that a
	// renewal missed it, forcing the next TryAcquire to bump the token
	// even if the wall-clock record still names us unexpired.
	monoMu       sync.Mutex
	monoValid    bool
	monoLost     bool
	monoDeadline time.Duration

	// Quarantine sweeper bounds (lowercase: tests tighten them) and the
	// bytes-freed counter surfaced as /stats quarantine_gc_bytes.
	quarCap    int64
	quarMaxAge time.Duration
	quarMu     sync.Mutex
	quarSwept  atomic.Uint64

	// Scan cache: per-file (size, mtime) stamps plus the decoded result,
	// so repeated scans re-read only files that actually changed.
	scanMu     sync.Mutex
	scanCache  map[string]scanCached
	dirMtime   time.Time
	dirValid   bool
	dirSettled bool
}

// scanCached is one committed file's cached Scan outcome: exactly one
// of entry/ckpt is set.
type scanCached struct {
	size  int64
	mtime time.Time
	entry *ScanEntry
	ckpt  *serial.StoredCheckpoint
}

// Open creates (if needed) and returns the store at dir in
// single-process mode: commits are not fenced and snapshots carry
// fencing token 0.
func Open(dir string) (*Store, error) { return open(dir, false) }

// OpenFleet opens the store at dir in fleet mode: every commit must
// hold the current lease (TryAcquire) and re-verifies its fencing token
// under the lease lock immediately before the rename. Commits without
// the lease fail with ErrStaleFence and their payload is quarantined.
func OpenFleet(dir string) (*Store, error) { return open(dir, true) }

func open(dir string, fleet bool) (*Store, error) {
	if dir == "" {
		return nil, errors.New("store: empty directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	return &Store{
		dir:        dir,
		fleet:      fleet,
		now:        time.Now,
		mono:       func() time.Duration { return time.Since(monoStart) },
		quarCap:    quarantineCapBytes,
		quarMaxAge: quarantineMaxAge,
		scanCache:  make(map[string]scanCached),
	}, nil
}

// Dir returns the store's directory.
func (s *Store) Dir() string { return s.dir }

// WriteEntry durably persists a completed entry snapshot under its
// spec's digest, stamping the store's current fencing token into the
// snapshot (0 outside fleet mode) for forensic attribution.
func (s *Store) WriteEntry(e *serial.StoredEntry) error {
	e.Fence = s.fence.Load()
	data, err := serial.EncodeStoredEntry(e)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	return s.commit(e.Spec.Digest()+entryExt, data)
}

// WriteCheckpoint durably persists a mid-solve checkpoint under its
// spec's digest, replacing any previous checkpoint for that digest.
// Like WriteEntry it stamps the current fencing token.
func (s *Store) WriteCheckpoint(c *serial.StoredCheckpoint) error {
	c.Fence = s.fence.Load()
	data, err := serial.EncodeStoredCheckpoint(c)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	return s.commit(c.Spec.Digest()+checkpointExt, data)
}

// LoadEntry reads and validates the committed entry snapshot for
// digest. A snapshot that fails checksum/validation — or whose embedded
// spec does not hash to the digest naming the file — is quarantined and
// reported as ErrCorrupt; a missing file is ErrNotFound.
func (s *Store) LoadEntry(digest string) (*serial.StoredEntry, error) {
	name := digest + entryExt
	data, err := s.read(name)
	if err != nil {
		return nil, err
	}
	e, err := serial.DecodeStoredEntry(data)
	if err == nil && e.Spec.Digest() != digest {
		err = fmt.Errorf("embedded spec digest %s does not match file name", e.Spec.Digest())
	}
	if err != nil {
		s.quarantine(name)
		return nil, fmt.Errorf("%w: %s: %v", ErrCorrupt, name, err)
	}
	return e, nil
}

// LoadCheckpoint reads and validates the committed checkpoint for
// digest; same ErrNotFound/ErrCorrupt contract as LoadEntry.
func (s *Store) LoadCheckpoint(digest string) (*serial.StoredCheckpoint, error) {
	name := digest + checkpointExt
	data, err := s.read(name)
	if err != nil {
		return nil, err
	}
	c, err := serial.DecodeStoredCheckpoint(data)
	if err == nil && c.Spec.Digest() != digest {
		err = fmt.Errorf("embedded spec digest %s does not match file name", c.Spec.Digest())
	}
	if err != nil {
		s.quarantine(name)
		return nil, fmt.Errorf("%w: %s: %v", ErrCorrupt, name, err)
	}
	return c, nil
}

// DeleteCheckpoint removes the checkpoint for digest (a completed
// optimal solve supersedes it). Deleting a missing checkpoint is a
// no-op.
func (s *Store) DeleteCheckpoint(digest string) {
	_ = os.Remove(filepath.Join(s.dir, digest+checkpointExt))
}

// ScanEntry describes one valid committed entry snapshot found by Scan.
type ScanEntry struct {
	Digest string
	Tier   string
}

// ScanReport is the outcome of a startup or refresh scan.
type ScanReport struct {
	// Entries lists the valid entry snapshots (digest + tier), lazily
	// loadable via LoadEntry.
	Entries []ScanEntry
	// Checkpoints holds the decoded, validated mid-solve checkpoints —
	// the interrupted solves a restarting server re-enqueues.
	Checkpoints []*serial.StoredCheckpoint
	// Quarantined counts files moved aside this scan for failing
	// checksum, version or semantic validation.
	Quarantined int
	// Delta lists the entries that are new or changed since the
	// previous Scan on this Store — what a follower's refresh loop
	// feeds into its cache.
	Delta []ScanEntry
	// Loaded counts files actually read and decoded this scan; a scan
	// over an unchanged directory reports 0 (everything served from the
	// per-file stamp cache).
	Loaded int
}

// Scan walks the store directory, validating every committed snapshot:
// valid entries and checkpoints are reported, corrupt files are
// quarantined, and temp debris from crashed writes is deleted (only
// once older than debrisGrace — in a fleet a peer may be mid-commit).
// Scan never fails on the content of any individual file — a torn
// write or hostile bytes cost that one file, nothing else.
//
// Repeated scans are cheap: each file's (size, mtime) is cached with
// its decoded result, so an unchanged file is never re-read, and an
// unchanged directory (by mtime, once quiescent for scanSettle) is not
// even re-listed. The directory is stat'ed before the walk, so a
// writer racing the walk can only make the cache conservatively stale
// — the next Scan re-walks.
func (s *Store) Scan() (*ScanReport, error) {
	s.scanMu.Lock()
	defer s.scanMu.Unlock()
	if ferr := faultinject.At(FaultSiteRefresh); ferr != nil {
		return nil, fmt.Errorf("store: scan: %w", ferr)
	}
	now := s.now()
	di, derr := os.Stat(s.dir)
	if derr == nil && s.dirValid && s.dirSettled && di.ModTime().Equal(s.dirMtime) {
		return s.reportFromCache(0, nil, 0), nil
	}
	names, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("store: scan: %w", err)
	}
	loaded, quarantined := 0, 0
	var delta []ScanEntry
	live := make(map[string]bool, len(names))
	for _, de := range names {
		name := de.Name()
		if de.IsDir() || name == leaseName || name == leaseLockName {
			continue // quarantine/, the lease protocol's files
		}
		if strings.HasPrefix(name, tmpPrefix) {
			// Debris of a write that never committed: the rename never
			// happened, so nothing references it. Remove quietly, but
			// only once old enough that no live peer can still own it.
			if fi, ferr := de.Info(); ferr == nil && now.Sub(fi.ModTime()) > debrisGrace {
				_ = os.Remove(filepath.Join(s.dir, name))
			}
			continue
		}
		fi, ferr := de.Info()
		if ferr != nil {
			continue // vanished between the listing and the stat
		}
		if c, ok := s.scanCache[name]; ok && c.size == fi.Size() && c.mtime.Equal(fi.ModTime()) {
			live[name] = true
			continue
		}
		switch {
		case strings.HasSuffix(name, entryExt):
			digest := strings.TrimSuffix(name, entryExt)
			e, err := s.LoadEntry(digest)
			if err != nil {
				// LoadEntry quarantined a corrupt file already; count it.
				if errors.Is(err, ErrCorrupt) {
					quarantined++
				}
				continue
			}
			loaded++
			se := ScanEntry{Digest: digest, Tier: e.Tier}
			s.scanCache[name] = scanCached{size: fi.Size(), mtime: fi.ModTime(), entry: &se}
			delta = append(delta, se)
			live[name] = true
		case strings.HasSuffix(name, checkpointExt):
			digest := strings.TrimSuffix(name, checkpointExt)
			c, err := s.LoadCheckpoint(digest)
			if err != nil {
				if errors.Is(err, ErrCorrupt) {
					quarantined++
				}
				continue
			}
			loaded++
			s.scanCache[name] = scanCached{size: fi.Size(), mtime: fi.ModTime(), ckpt: c}
			live[name] = true
		default:
			// Unknown file kind in the store directory: treat exactly
			// like a corrupt snapshot — move it out of the way.
			s.quarantine(name)
			quarantined++
		}
	}
	// Files that disappeared (completed checkpoints deleted, peers'
	// quarantines) fall out of the cache and the report.
	for name := range s.scanCache {
		if !live[name] {
			delete(s.scanCache, name)
		}
	}
	if derr == nil {
		s.dirMtime = di.ModTime()
		s.dirValid = true
		s.dirSettled = now.Sub(di.ModTime()) > scanSettle
	} else {
		s.dirValid = false
	}
	// Every real walk also bounds the quarantine directory, so a store
	// that only ever scans (a follower) still ages out old forensics.
	s.sweepQuarantine()
	return s.reportFromCache(loaded, delta, quarantined), nil
}

// reportFromCache materialises a fresh ScanReport (callers own it) from
// the stamp cache, in digest order for determinism.
func (s *Store) reportFromCache(loaded int, delta []ScanEntry, quarantined int) *ScanReport {
	rep := &ScanReport{Loaded: loaded, Delta: delta, Quarantined: quarantined}
	for _, c := range s.scanCache {
		switch {
		case c.entry != nil:
			rep.Entries = append(rep.Entries, *c.entry)
		case c.ckpt != nil:
			rep.Checkpoints = append(rep.Checkpoints, c.ckpt)
		}
	}
	sort.Slice(rep.Entries, func(i, j int) bool { return rep.Entries[i].Digest < rep.Entries[j].Digest })
	sort.Slice(rep.Checkpoints, func(i, j int) bool {
		return rep.Checkpoints[i].Spec.Digest() < rep.Checkpoints[j].Spec.Digest()
	})
	return rep
}

// commit runs the atomic durability protocol: temp write → fsync →
// rename → directory fsync. On any failure the temp file is removed and
// the previously committed snapshot (if any) is untouched.
func (s *Store) commit(name string, data []byte) (err error) {
	f, err := os.CreateTemp(s.dir, tmpPrefix+name+"-*")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	tmp := f.Name()
	torn := false
	defer func() {
		if err != nil && !torn {
			f.Close()
			_ = os.Remove(tmp)
		}
	}()
	if ferr := faultinject.At(FaultSiteWrite); ferr != nil {
		return fmt.Errorf("store: write %s: %w", name, ferr)
	}
	if ferr := faultinject.At(FaultSiteShortWrite); ferr != nil {
		// Simulated torn write: half the bytes land, then the protocol
		// aborts as if the process died. The temp file is deliberately
		// left behind (a real crash leaves it too); recovery must shrug
		// it off.
		_, _ = f.Write(data[:len(data)/2])
		f.Close()
		torn = true
		return fmt.Errorf("store: write %s: %w", name, ferr)
	}
	if _, werr := f.Write(data); werr != nil {
		return fmt.Errorf("store: %w", werr)
	}
	if ferr := faultinject.At(FaultSiteFsync); ferr != nil {
		return fmt.Errorf("store: fsync %s: %w", name, ferr)
	}
	if serr := f.Sync(); serr != nil {
		return fmt.Errorf("store: %w", serr)
	}
	if cerr := f.Close(); cerr != nil {
		return fmt.Errorf("store: %w", cerr)
	}
	if ferr := faultinject.At(FaultSiteRename); ferr != nil {
		return fmt.Errorf("store: rename %s: %w", name, ferr)
	}
	if s.fleet {
		return s.fencedRename(tmp, name)
	}
	if rerr := os.Rename(tmp, filepath.Join(s.dir, name)); rerr != nil {
		return fmt.Errorf("store: %w", rerr)
	}
	s.syncDir()
	return nil
}

// fencedRename is the fleet-mode commit step: under the lease lock it
// re-reads the lease record and renames only if this store's fencing
// token is still the one on file. An election needs the same lock, so
// no new leader can be minted between the check and the rename. A
// stale (or absent) token quarantines the payload and reports
// ErrStaleFence — a demoted leader's write is discarded, never served.
func (s *Store) fencedRename(tmp, name string) error {
	cur := s.fence.Load()
	if ferr := faultinject.At(FaultSiteStaleFence); ferr != nil {
		return s.rejectStale(tmp, name, cur)
	}
	if cur == 0 {
		return s.rejectStale(tmp, name, cur)
	}
	lock, err := s.lockLease()
	if err != nil {
		return fmt.Errorf("store: commit %s: %w", name, err)
	}
	defer unlockLease(lock)
	rec, ok, err := s.readLease()
	if err != nil {
		return fmt.Errorf("store: commit %s: %w", name, err)
	}
	if !ok || rec.Token != cur {
		return s.rejectStale(tmp, name, cur)
	}
	if rerr := os.Rename(tmp, filepath.Join(s.dir, name)); rerr != nil {
		return fmt.Errorf("store: %w", rerr)
	}
	s.syncDir()
	return nil
}

// rejectStale quarantines a fenced-out commit's temp payload (kept for
// forensics under its unique temp name) and clears the stale fence so
// subsequent writes fail fast without re-contending the lease lock.
func (s *Store) rejectStale(tmp, name string, cur uint64) error {
	s.fence.CompareAndSwap(cur, 0)
	s.quarantine(filepath.Base(tmp))
	return fmt.Errorf("store: commit %s: fence %d: %w", name, cur, ErrStaleFence)
}

// syncDir fsyncs the store directory so a just-committed rename
// survives power loss. A failure here (injected or real) only weakens
// power-loss durability of an already crash-consistent rename, so it
// is ignored.
func (s *Store) syncDir() {
	if ferr := faultinject.At(FaultSiteDirSync); ferr != nil {
		return
	}
	if d, derr := os.Open(s.dir); derr == nil {
		//lint:ignore errflow directory-fsync failure only weakens power-loss durability of an already crash-consistent rename; see the function comment
		_ = d.Sync()
		d.Close()
	}
}

// read fetches a committed snapshot's bytes.
func (s *Store) read(name string) ([]byte, error) {
	if ferr := faultinject.At(FaultSiteRead); ferr != nil {
		return nil, fmt.Errorf("store: read %s: %w", name, ferr)
	}
	data, err := os.ReadFile(filepath.Join(s.dir, name))
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil, ErrNotFound
		}
		return nil, fmt.Errorf("store: %w", err)
	}
	return data, nil
}

// quarantine moves a rejected file into the quarantine subdirectory
// (creating it on first use), falling back to deletion if the move
// fails. It never reports an error: quarantine runs on recovery paths
// that must not themselves fail.
func (s *Store) quarantine(name string) {
	qdir := filepath.Join(s.dir, quarantineDir)
	_ = os.MkdirAll(qdir, 0o755)
	src := filepath.Join(s.dir, name)
	if ferr := faultinject.At(FaultSiteQuarantine); ferr != nil {
		// An injected crash here leaves the corrupt file in place; the
		// next scan re-detects and re-quarantines it, so losing the move
		// is safe.
		return
	}
	if err := os.Rename(src, filepath.Join(qdir, name)); err != nil {
		_ = os.Remove(src)
	}
	s.sweepQuarantine()
}

// sweepQuarantine bounds the quarantine subdirectory: files older than
// quarMaxAge are removed, then oldest-first until the total size fits
// quarCap. Freed bytes accumulate in quarSwept. Best-effort like
// quarantine itself — any failure just defers the sweep to the next
// insert or scan.
func (s *Store) sweepQuarantine() {
	s.quarMu.Lock()
	defer s.quarMu.Unlock()
	qdir := filepath.Join(s.dir, quarantineDir)
	if _, err := os.Stat(qdir); err != nil {
		return
	}
	if ferr := faultinject.At(FaultSiteQuarantineGC); ferr != nil {
		return
	}
	des, err := os.ReadDir(qdir)
	if err != nil {
		return
	}
	type qfile struct {
		name  string
		size  int64
		mtime time.Time
	}
	files := make([]qfile, 0, len(des))
	var total int64
	for _, de := range des {
		fi, ierr := de.Info()
		if ierr != nil || de.IsDir() {
			continue
		}
		files = append(files, qfile{de.Name(), fi.Size(), fi.ModTime()})
		total += fi.Size()
	}
	sort.Slice(files, func(i, j int) bool { return files[i].mtime.Before(files[j].mtime) })
	now := s.now()
	// Oldest first: age-expired files always go; once the remainder is
	// young enough, keep deleting only while still over the cap. The
	// sort makes one pass sufficient — every later file is newer.
	for _, f := range files {
		if now.Sub(f.mtime) <= s.quarMaxAge && total <= s.quarCap {
			break
		}
		if rerr := os.Remove(filepath.Join(qdir, f.name)); rerr == nil {
			total -= f.size
			s.quarSwept.Add(uint64(f.size))
		}
	}
}

// QuarantineGCBytes returns the cumulative bytes the quarantine sweeper
// has freed — the /stats quarantine_gc_bytes source.
func (s *Store) QuarantineGCBytes() uint64 { return s.quarSwept.Load() }

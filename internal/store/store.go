// Package store is the durable, crash-safe snapshot store behind the
// obfuscation service's mechanism cache. Two snapshot kinds live in one
// directory, both keyed by the solve spec's content digest:
//
//	<digest>.mech — a completed (possibly degraded) cache entry
//	<digest>.ckpt — a mid-solve checkpoint of the CG column pool
//
// Durability protocol: every write goes to a temp file in the same
// directory, is fsynced, atomically renamed over the final name, and the
// directory itself is fsynced — so a committed snapshot survives kill -9
// at any instant, and a crash mid-write leaves only ignorable temp
// debris, never a half-written committed file. Snapshots are versioned
// and SHA-256-checksummed by internal/serial; a file that fails
// checksum, version or semantic validation (including a digest that does
// not match its file name) is quarantined into a subdirectory — kept for
// forensics, removed from the serving path — and reported, never served
// and never fatal. The worst outcome of any corruption is a cold
// re-solve.
//
// Fault injection: the five I/O sites (write, short write, fsync,
// rename, read) carry faultinject points so the chaos suite can kill
// the protocol at every step and assert the recovery invariants.
package store

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/faultinject"
	"repro/internal/serial"
)

// Fault-injection sites visited by the store's I/O protocol.
const (
	FaultSiteWrite      = "store/write"
	FaultSiteShortWrite = "store/shortwrite"
	FaultSiteFsync      = "store/fsync"
	FaultSiteRename     = "store/rename"
	FaultSiteRead       = "store/read"
	FaultSiteQuarantine = "store/quarantine"
)

const (
	entryExt      = ".mech"
	checkpointExt = ".ckpt"
	tmpPrefix     = "tmp-"
	quarantineDir = "quarantine"
)

// ErrNotFound reports that no committed snapshot exists for a digest.
var ErrNotFound = errors.New("store: snapshot not found")

// ErrCorrupt wraps every validation failure of a committed snapshot;
// the offending file has already been quarantined when a load returns
// it. errors.Is(err, ErrCorrupt) distinguishes "re-solve and move on"
// from real I/O trouble.
var ErrCorrupt = errors.New("store: corrupt snapshot")

// Store is a snapshot directory. All methods are safe for concurrent
// use by multiple goroutines of one process; the atomic-rename protocol
// additionally keeps concurrent writers of the same digest from ever
// exposing a torn file (last rename wins whole).
type Store struct {
	dir string
}

// Open creates (if needed) and returns the store at dir.
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, errors.New("store: empty directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store's directory.
func (s *Store) Dir() string { return s.dir }

// WriteEntry durably persists a completed entry snapshot under its
// spec's digest.
func (s *Store) WriteEntry(e *serial.StoredEntry) error {
	data, err := serial.EncodeStoredEntry(e)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	return s.commit(e.Spec.Digest()+entryExt, data)
}

// WriteCheckpoint durably persists a mid-solve checkpoint under its
// spec's digest, replacing any previous checkpoint for that digest.
func (s *Store) WriteCheckpoint(c *serial.StoredCheckpoint) error {
	data, err := serial.EncodeStoredCheckpoint(c)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	return s.commit(c.Spec.Digest()+checkpointExt, data)
}

// LoadEntry reads and validates the committed entry snapshot for
// digest. A snapshot that fails checksum/validation — or whose embedded
// spec does not hash to the digest naming the file — is quarantined and
// reported as ErrCorrupt; a missing file is ErrNotFound.
func (s *Store) LoadEntry(digest string) (*serial.StoredEntry, error) {
	name := digest + entryExt
	data, err := s.read(name)
	if err != nil {
		return nil, err
	}
	e, err := serial.DecodeStoredEntry(data)
	if err == nil && e.Spec.Digest() != digest {
		err = fmt.Errorf("embedded spec digest %s does not match file name", e.Spec.Digest())
	}
	if err != nil {
		s.quarantine(name)
		return nil, fmt.Errorf("%w: %s: %v", ErrCorrupt, name, err)
	}
	return e, nil
}

// LoadCheckpoint reads and validates the committed checkpoint for
// digest; same ErrNotFound/ErrCorrupt contract as LoadEntry.
func (s *Store) LoadCheckpoint(digest string) (*serial.StoredCheckpoint, error) {
	name := digest + checkpointExt
	data, err := s.read(name)
	if err != nil {
		return nil, err
	}
	c, err := serial.DecodeStoredCheckpoint(data)
	if err == nil && c.Spec.Digest() != digest {
		err = fmt.Errorf("embedded spec digest %s does not match file name", c.Spec.Digest())
	}
	if err != nil {
		s.quarantine(name)
		return nil, fmt.Errorf("%w: %s: %v", ErrCorrupt, name, err)
	}
	return c, nil
}

// DeleteCheckpoint removes the checkpoint for digest (a completed
// optimal solve supersedes it). Deleting a missing checkpoint is a
// no-op.
func (s *Store) DeleteCheckpoint(digest string) {
	_ = os.Remove(filepath.Join(s.dir, digest+checkpointExt))
}

// ScanEntry describes one valid committed entry snapshot found by Scan.
type ScanEntry struct {
	Digest string
	Tier   string
}

// ScanReport is the outcome of a startup scan.
type ScanReport struct {
	// Entries lists the valid entry snapshots (digest + tier), lazily
	// loadable via LoadEntry.
	Entries []ScanEntry
	// Checkpoints holds the decoded, validated mid-solve checkpoints —
	// the interrupted solves a restarting server re-enqueues.
	Checkpoints []*serial.StoredCheckpoint
	// Quarantined counts files moved aside for failing checksum,
	// version or semantic validation.
	Quarantined int
}

// Scan walks the store directory, validating every committed snapshot:
// valid entries and checkpoints are reported, corrupt files are
// quarantined, and temp debris from crashed writes is deleted. Scan
// never fails on the content of any individual file — a torn write or
// hostile bytes cost that one file, nothing else.
func (s *Store) Scan() (*ScanReport, error) {
	names, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("store: scan: %w", err)
	}
	rep := &ScanReport{}
	for _, de := range names {
		name := de.Name()
		if de.IsDir() {
			continue // quarantine/ and anything else foreign
		}
		if strings.HasPrefix(name, tmpPrefix) {
			// Debris of a write that never committed: the rename never
			// happened, so nothing references it. Remove quietly.
			_ = os.Remove(filepath.Join(s.dir, name))
			continue
		}
		switch {
		case strings.HasSuffix(name, entryExt):
			digest := strings.TrimSuffix(name, entryExt)
			e, err := s.LoadEntry(digest)
			if err != nil {
				// LoadEntry quarantined a corrupt file already; count it.
				if errors.Is(err, ErrCorrupt) {
					rep.Quarantined++
				}
				continue
			}
			rep.Entries = append(rep.Entries, ScanEntry{Digest: digest, Tier: e.Tier})
		case strings.HasSuffix(name, checkpointExt):
			digest := strings.TrimSuffix(name, checkpointExt)
			c, err := s.LoadCheckpoint(digest)
			if err != nil {
				if errors.Is(err, ErrCorrupt) {
					rep.Quarantined++
				}
				continue
			}
			rep.Checkpoints = append(rep.Checkpoints, c)
		default:
			// Unknown file kind in the store directory: treat exactly
			// like a corrupt snapshot — move it out of the way.
			s.quarantine(name)
			rep.Quarantined++
		}
	}
	return rep, nil
}

// commit runs the atomic durability protocol: temp write → fsync →
// rename → directory fsync. On any failure the temp file is removed and
// the previously committed snapshot (if any) is untouched.
func (s *Store) commit(name string, data []byte) (err error) {
	f, err := os.CreateTemp(s.dir, tmpPrefix+name+"-*")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	tmp := f.Name()
	torn := false
	defer func() {
		if err != nil && !torn {
			f.Close()
			_ = os.Remove(tmp)
		}
	}()
	if ferr := faultinject.At(FaultSiteWrite); ferr != nil {
		return fmt.Errorf("store: write %s: %w", name, ferr)
	}
	if ferr := faultinject.At(FaultSiteShortWrite); ferr != nil {
		// Simulated torn write: half the bytes land, then the protocol
		// aborts as if the process died. The temp file is deliberately
		// left behind (a real crash leaves it too); recovery must shrug
		// it off.
		_, _ = f.Write(data[:len(data)/2])
		f.Close()
		torn = true
		return fmt.Errorf("store: write %s: %w", name, ferr)
	}
	if _, werr := f.Write(data); werr != nil {
		return fmt.Errorf("store: %w", werr)
	}
	if ferr := faultinject.At(FaultSiteFsync); ferr != nil {
		return fmt.Errorf("store: fsync %s: %w", name, ferr)
	}
	if serr := f.Sync(); serr != nil {
		return fmt.Errorf("store: %w", serr)
	}
	if cerr := f.Close(); cerr != nil {
		return fmt.Errorf("store: %w", cerr)
	}
	if ferr := faultinject.At(FaultSiteRename); ferr != nil {
		return fmt.Errorf("store: rename %s: %w", name, ferr)
	}
	if rerr := os.Rename(tmp, filepath.Join(s.dir, name)); rerr != nil {
		return fmt.Errorf("store: %w", rerr)
	}
	// fsync the directory so the rename itself survives power loss.
	if d, derr := os.Open(s.dir); derr == nil {
		_ = d.Sync()
		d.Close()
	}
	return nil
}

// read fetches a committed snapshot's bytes.
func (s *Store) read(name string) ([]byte, error) {
	if ferr := faultinject.At(FaultSiteRead); ferr != nil {
		return nil, fmt.Errorf("store: read %s: %w", name, ferr)
	}
	data, err := os.ReadFile(filepath.Join(s.dir, name))
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil, ErrNotFound
		}
		return nil, fmt.Errorf("store: %w", err)
	}
	return data, nil
}

// quarantine moves a rejected file into the quarantine subdirectory
// (creating it on first use), falling back to deletion if the move
// fails. It never reports an error: quarantine runs on recovery paths
// that must not themselves fail.
func (s *Store) quarantine(name string) {
	qdir := filepath.Join(s.dir, quarantineDir)
	_ = os.MkdirAll(qdir, 0o755)
	src := filepath.Join(s.dir, name)
	if ferr := faultinject.At(FaultSiteQuarantine); ferr != nil {
		// An injected crash here leaves the corrupt file in place; the
		// next scan re-detects and re-quarantines it, so losing the move
		// is safe.
		return
	}
	if err := os.Rename(src, filepath.Join(qdir, name)); err != nil {
		_ = os.Remove(src)
	}
}

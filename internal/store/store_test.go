package store

import (
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/roadnet"
	"repro/internal/serial"
)

// testSpec returns a small valid solve spec; distinct seeds give
// distinct digests.
func testSpec(tb testing.TB, seed int64) serial.SolveSpec {
	tb.Helper()
	rng := rand.New(rand.NewSource(seed))
	net := serial.FromGraph(roadnet.Grid(rng, roadnet.GridConfig{Rows: 2, Cols: 2, Spacing: 0.3, WeightJitter: 0.1}))
	return serial.SolveSpec{Network: net, Delta: 0.3, Epsilon: 5}
}

// testEntry builds a valid incumbent-tier entry snapshot over k
// intervals for the given spec seed.
func testEntry(tb testing.TB, seed int64, k int) *serial.StoredEntry {
	tb.Helper()
	z := make([]float64, k*k)
	for i := range z {
		z[i] = 1 / float64(k)
	}
	cols := make([]serial.StoredColumn, k)
	for l := range cols {
		zc := make([]float64, k)
		zc[l] = 1
		cols[l] = serial.StoredColumn{L: l, Z: zc, Cost: 0.25}
	}
	return &serial.StoredEntry{
		Spec:  testSpec(tb, seed),
		Tier:  serial.QualityIncumbent,
		ETDD:  0.5,
		Bound: 0.25,
		K:     k,
		Z:     z,
		State: &serial.StoredState{K: k, Cols: cols},
	}
}

func openTestStore(t *testing.T) *Store {
	t.Helper()
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestStoreEntryRoundTrip(t *testing.T) {
	s := openTestStore(t)
	e := testEntry(t, 1, 3)
	digest := e.Spec.Digest()

	if _, err := s.LoadEntry(digest); !errors.Is(err, ErrNotFound) {
		t.Fatalf("load before write: %v, want ErrNotFound", err)
	}
	if err := s.WriteEntry(e); err != nil {
		t.Fatal(err)
	}
	got, err := s.LoadEntry(digest)
	if err != nil {
		t.Fatal(err)
	}
	if got.Tier != e.Tier || got.ETDD != e.ETDD || got.K != e.K || got.Spec.Digest() != digest {
		t.Fatalf("entry changed across store round trip: %+v", got)
	}
	if got.State == nil || len(got.State.Cols) != len(e.State.Cols) {
		t.Fatal("state dropped across store round trip")
	}

	// Overwrite with a better tier: last write wins, whole.
	e.Tier = serial.QualityOptimal
	e.State = nil
	if err := s.WriteEntry(e); err != nil {
		t.Fatal(err)
	}
	got, err = s.LoadEntry(digest)
	if err != nil {
		t.Fatal(err)
	}
	if got.Tier != serial.QualityOptimal || got.State != nil {
		t.Fatalf("overwrite not visible: %+v", got)
	}
}

func TestStoreCheckpointRoundTrip(t *testing.T) {
	s := openTestStore(t)
	e := testEntry(t, 2, 3)
	c := &serial.StoredCheckpoint{Spec: e.Spec, Rounds: 9, State: *e.State}
	digest := c.Spec.Digest()

	if _, err := s.LoadCheckpoint(digest); !errors.Is(err, ErrNotFound) {
		t.Fatalf("load before write: %v, want ErrNotFound", err)
	}
	if err := s.WriteCheckpoint(c); err != nil {
		t.Fatal(err)
	}
	got, err := s.LoadCheckpoint(digest)
	if err != nil {
		t.Fatal(err)
	}
	if got.Rounds != 9 || got.Spec.Digest() != digest || len(got.State.Cols) != 3 {
		t.Fatalf("checkpoint changed across store round trip: %+v", got)
	}

	s.DeleteCheckpoint(digest)
	if _, err := s.LoadCheckpoint(digest); !errors.Is(err, ErrNotFound) {
		t.Fatalf("load after delete: %v, want ErrNotFound", err)
	}
	s.DeleteCheckpoint(digest) // deleting a missing checkpoint is a no-op
}

// TestStoreCommitFaults kills the durability protocol at every injected
// site and asserts the invariant: a failed commit never damages the
// previously committed snapshot, and never exposes a torn committed
// file.
func TestStoreCommitFaults(t *testing.T) {
	boom := errors.New("injected")
	for _, site := range []string{FaultSiteWrite, FaultSiteShortWrite, FaultSiteFsync, FaultSiteRename} {
		t.Run(strings.TrimPrefix(site, "store/"), func(t *testing.T) {
			defer faultinject.Reset()
			s := openTestStore(t)
			e := testEntry(t, 3, 3)
			digest := e.Spec.Digest()
			if err := s.WriteEntry(e); err != nil {
				t.Fatal(err)
			}

			// Second write, upgraded tier, dies at the armed site.
			e2 := testEntry(t, 3, 3)
			e2.Tier = serial.QualityOptimal
			e2.State = nil
			faultinject.Set(site, faultinject.Fault{Err: boom, Times: 1})
			if err := s.WriteEntry(e2); !errors.Is(err, boom) {
				t.Fatalf("commit with %s armed: %v, want injected error", site, err)
			}

			// The first committed snapshot is intact, byte for byte.
			got, err := s.LoadEntry(digest)
			if err != nil {
				t.Fatalf("prior snapshot lost after failed commit: %v", err)
			}
			if got.Tier != serial.QualityIncumbent {
				t.Fatalf("failed commit became visible: tier %q", got.Tier)
			}

			// After the fault clears, the commit goes through.
			if err := s.WriteEntry(e2); err != nil {
				t.Fatal(err)
			}
			if got, err = s.LoadEntry(digest); err != nil || got.Tier != serial.QualityOptimal {
				t.Fatalf("retry after fault: entry %+v, err %v", got, err)
			}
		})
	}
}

// TestStoreShortWriteLeavesOnlyDebris: a torn write (half the bytes,
// then death) must leave temp debris — never a committed file. Fresh
// debris survives a scan (a fleet peer could be mid-commit under the
// same name pattern); once older than the grace period, Scan sweeps it.
func TestStoreShortWriteLeavesOnlyDebris(t *testing.T) {
	defer faultinject.Reset()
	s := openTestStore(t)
	e := testEntry(t, 4, 3)
	faultinject.Set(FaultSiteShortWrite, faultinject.Fault{Err: errors.New("torn"), Times: 1})
	if err := s.WriteEntry(e); err == nil {
		t.Fatal("torn write reported success")
	}
	var debris []string
	names, err := os.ReadDir(s.Dir())
	if err != nil {
		t.Fatal(err)
	}
	for _, de := range names {
		if strings.HasPrefix(de.Name(), tmpPrefix) {
			debris = append(debris, de.Name())
		} else if !de.IsDir() {
			t.Fatalf("torn write committed a file: %s", de.Name())
		}
	}
	if len(debris) == 0 {
		t.Fatal("torn write left no temp file to exercise recovery against")
	}

	rep, err := s.Scan()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Entries) != 0 || len(rep.Checkpoints) != 0 || rep.Quarantined != 0 {
		t.Fatalf("scan over debris: %+v, want empty report", rep)
	}
	// Fresh debris is untouched: it could be a live peer's in-flight
	// commit.
	for _, name := range debris {
		if _, err := os.Stat(filepath.Join(s.Dir(), name)); err != nil {
			t.Fatalf("scan removed fresh temp file %s: %v", name, err)
		}
	}

	// Backdate the debris past the grace period; now it is provably a
	// crashed write and the next scan sweeps it.
	old := time.Now().Add(-2 * debrisGrace)
	for _, name := range debris {
		if err := os.Chtimes(filepath.Join(s.Dir(), name), old, old); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.Scan(); err != nil {
		t.Fatal(err)
	}
	names, err = os.ReadDir(s.Dir())
	if err != nil {
		t.Fatal(err)
	}
	for _, de := range names {
		if strings.HasPrefix(de.Name(), tmpPrefix) {
			t.Fatalf("scan left expired temp debris behind: %s", de.Name())
		}
	}
}

func TestStoreReadFault(t *testing.T) {
	defer faultinject.Reset()
	s := openTestStore(t)
	e := testEntry(t, 5, 3)
	if err := s.WriteEntry(e); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("disk gone")
	faultinject.Set(FaultSiteRead, faultinject.Fault{Err: boom, Times: 1})
	_, err := s.LoadEntry(e.Spec.Digest())
	if !errors.Is(err, boom) {
		t.Fatalf("read fault: %v, want injected error", err)
	}
	if errors.Is(err, ErrCorrupt) {
		t.Fatal("I/O failure misreported as corruption")
	}
	// The file must NOT have been quarantined — it is fine, the disk hiccuped.
	if _, err := s.LoadEntry(e.Spec.Digest()); err != nil {
		t.Fatalf("entry gone after transient read fault: %v", err)
	}
}

// TestStoreCorruptionQuarantine: every on-disk corruption mode —
// truncation, bit flips, a snapshot renamed to the wrong digest,
// garbage — loads as ErrCorrupt and leaves the file quarantined, not in
// the serving path.
func TestStoreCorruptionQuarantine(t *testing.T) {
	e := testEntry(t, 6, 3)
	digest := e.Spec.Digest()
	valid, err := serial.EncodeStoredEntry(e)
	if err != nil {
		t.Fatal(err)
	}

	corruptions := map[string]func() []byte{
		"truncated header": func() []byte { return valid[:4] },
		"truncated body":   func() []byte { return valid[:len(valid)/2] },
		"truncated checksum": func() []byte {
			return valid[:len(valid)-8]
		},
		"bit flip": func() []byte {
			bad := append([]byte(nil), valid...)
			bad[len(bad)/2] ^= 0x10
			return bad
		},
		"empty file": func() []byte { return nil },
		"garbage":    func() []byte { return []byte("not a snapshot at all") },
	}
	for name, make := range corruptions {
		t.Run(strings.ReplaceAll(name, " ", "-"), func(t *testing.T) {
			s := openTestStore(t)
			path := filepath.Join(s.Dir(), digest+entryExt)
			if err := os.WriteFile(path, make(), 0o644); err != nil {
				t.Fatal(err)
			}
			_, err := s.LoadEntry(digest)
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("load corrupt snapshot: %v, want ErrCorrupt", err)
			}
			if _, err := os.Stat(path); !errors.Is(err, os.ErrNotExist) {
				t.Fatal("corrupt file still in the serving path")
			}
			if _, err := os.Stat(filepath.Join(s.Dir(), quarantineDir, digest+entryExt)); err != nil {
				t.Fatalf("corrupt file not quarantined: %v", err)
			}
			// Second load: the file is gone, so plain not-found.
			if _, err := s.LoadEntry(digest); !errors.Is(err, ErrNotFound) {
				t.Fatalf("load after quarantine: %v, want ErrNotFound", err)
			}
		})
	}

	// A perfectly valid snapshot filed under the wrong digest (rename
	// attack / filesystem mixup) is also corruption: serving it would
	// answer the wrong spec.
	t.Run("wrong-digest-name", func(t *testing.T) {
		s := openTestStore(t)
		otherSpec := testSpec(t, 7)
		other := otherSpec.Digest()
		if other == digest {
			t.Fatal("test specs collided")
		}
		path := filepath.Join(s.Dir(), other+entryExt)
		if err := os.WriteFile(path, valid, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := s.LoadEntry(other); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("load mis-filed snapshot: %v, want ErrCorrupt", err)
		}
		if _, err := os.Stat(path); !errors.Is(err, os.ErrNotExist) {
			t.Fatal("mis-filed snapshot still in the serving path")
		}
	})
}

// TestStoreScan: a directory holding valid entries, a valid checkpoint,
// a corrupt snapshot, temp debris and a foreign file scans into exactly
// the right report without ever failing.
func TestStoreScan(t *testing.T) {
	s := openTestStore(t)

	e1 := testEntry(t, 10, 3)
	e2 := testEntry(t, 11, 3)
	e2.Tier = serial.QualityOptimal
	e2.State = nil
	if err := s.WriteEntry(e1); err != nil {
		t.Fatal(err)
	}
	if err := s.WriteEntry(e2); err != nil {
		t.Fatal(err)
	}
	e3 := testEntry(t, 12, 3)
	ck := &serial.StoredCheckpoint{Spec: e3.Spec, Rounds: 4, State: *e3.State}
	if err := s.WriteCheckpoint(ck); err != nil {
		t.Fatal(err)
	}

	// Plant a corrupt entry, a corrupt checkpoint, temp debris and a
	// foreign file.
	badEntry := testEntry(t, 13, 3)
	badData, err := serial.EncodeStoredEntry(badEntry)
	if err != nil {
		t.Fatal(err)
	}
	badData[len(badData)/2] ^= 0xFF
	if err := os.WriteFile(filepath.Join(s.Dir(), badEntry.Spec.Digest()+entryExt), badData, 0o644); err != nil {
		t.Fatal(err)
	}
	tornSpec := testSpec(t, 14)
	if err := os.WriteFile(filepath.Join(s.Dir(), tornSpec.Digest()+checkpointExt), []byte("torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(s.Dir(), tmpPrefix+"abandoned-123"), []byte("half a write"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(s.Dir(), "README.txt"), []byte("what is this doing here"), 0o644); err != nil {
		t.Fatal(err)
	}

	rep, err := s.Scan()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Entries) != 2 {
		t.Fatalf("scan found %d entries, want 2: %+v", len(rep.Entries), rep.Entries)
	}
	tiers := map[string]string{}
	for _, se := range rep.Entries {
		tiers[se.Digest] = se.Tier
	}
	if tiers[e1.Spec.Digest()] != serial.QualityIncumbent || tiers[e2.Spec.Digest()] != serial.QualityOptimal {
		t.Fatalf("scan tiers wrong: %v", tiers)
	}
	if len(rep.Checkpoints) != 1 || rep.Checkpoints[0].Spec.Digest() != e3.Spec.Digest() || rep.Checkpoints[0].Rounds != 4 {
		t.Fatalf("scan checkpoints wrong: %+v", rep.Checkpoints)
	}
	if rep.Quarantined != 3 {
		t.Fatalf("scan quarantined %d files, want 3 (corrupt entry, corrupt checkpoint, foreign file)", rep.Quarantined)
	}

	// Survivors still load; debris is gone; a rescan is clean.
	if _, err := s.LoadEntry(e1.Spec.Digest()); err != nil {
		t.Fatal(err)
	}
	if _, err := s.LoadCheckpoint(e3.Spec.Digest()); err != nil {
		t.Fatal(err)
	}
	rep2, err := s.Scan()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep2.Entries) != 2 || len(rep2.Checkpoints) != 1 || rep2.Quarantined != 0 {
		t.Fatalf("rescan not clean: %+v", rep2)
	}
}

func TestStoreOpenErrors(t *testing.T) {
	if _, err := Open(""); err == nil {
		t.Fatal("Open accepted an empty directory")
	}
	// Opening a path whose parent is a file must fail, not wedge.
	dir := t.TempDir()
	file := filepath.Join(dir, "occupied")
	if err := os.WriteFile(file, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(filepath.Join(file, "sub")); err == nil {
		t.Fatal("Open accepted a directory under a regular file")
	}
}

// TestStoreConcurrentWrites hammers one digest from many goroutines;
// under -race this doubles as the data-race check, and afterwards the
// committed snapshot must be one of the writers' values, whole.
func TestStoreConcurrentWrites(t *testing.T) {
	s := openTestStore(t)
	e := testEntry(t, 20, 3)
	digest := e.Spec.Digest()
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func(g int) {
			w := testEntry(t, 20, 3)
			w.ETDD = 0.5 + float64(g)/100
			done <- s.WriteEntry(w)
		}(g)
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	got, err := s.LoadEntry(digest)
	if err != nil {
		t.Fatal(err)
	}
	if got.ETDD < 0.5 || got.ETDD > 0.58 {
		t.Fatalf("committed snapshot is no writer's value: ETDD %v", got.ETDD)
	}
}

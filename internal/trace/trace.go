// Package trace replaces the paper's Rome taxi CRAWDAD dataset with a
// synthetic floating-vehicle simulator: vehicles perform biased random
// walks over a road network (denser near the map centre, matching the
// paper's downtown-heavy heat map), log timestamped positions at a fixed
// cadence (the CRAWDAD trace reports every ≈7 s), and the resulting
// records feed exactly the same estimators the paper uses — per-vehicle
// prior distributions f_P, the task prior f_Q, and the HMM transition
// counts of the spatial-correlation attack.
package trace

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/discretize"
	"repro/internal/geom"
	"repro/internal/roadnet"
)

// Record is one timestamped position report of one vehicle.
type Record struct {
	Time float64 // seconds since simulation start
	Loc  roadnet.Location
}

// VehicleTrace is the full record sequence of one simulated vehicle.
type VehicleTrace struct {
	ID      int
	Records []Record
	// PathDistance is the total distance actually driven, in km.
	PathDistance float64
}

// Duration returns the trace's covered time span in seconds.
func (v *VehicleTrace) Duration() float64 {
	if len(v.Records) < 2 {
		return 0
	}
	return v.Records[len(v.Records)-1].Time - v.Records[0].Time
}

// SimConfig parameterises the mobility simulation.
type SimConfig struct {
	// Vehicles is the fleet size (the CRAWDAD trace has ≈290 cabs).
	Vehicles int
	// Duration is the simulated span per vehicle in seconds.
	Duration float64
	// RecordEvery is the seconds between position records (≈7 in the
	// CRAWDAD trace).
	RecordEvery float64
	// SpeedKmh is the mean driving speed; per-vehicle speeds jitter ±30%.
	SpeedKmh float64
	// CenterBias ≥ 0 skews turn choices toward the map centre: at each
	// connection the next edge is drawn with weight e^{−bias·d(mid, centre)}.
	// 0 gives an unbiased random walk.
	CenterBias float64
	// DropoutProb is the per-record chance a report is lost, giving
	// vehicles different record counts like the real dataset.
	DropoutProb float64
}

// DefaultSim mirrors the paper's dataset at laptop scale.
func DefaultSim() SimConfig {
	return SimConfig{
		Vehicles:    290,
		Duration:    3 * 3600,
		RecordEvery: 7,
		SpeedKmh:    30,
		CenterBias:  1.2,
		DropoutProb: 0.25,
	}
}

// Simulate runs the fleet simulation over the graph.
func Simulate(rng *rand.Rand, g *roadnet.Graph, cfg SimConfig) ([]*VehicleTrace, error) {
	if cfg.Vehicles <= 0 || cfg.Duration <= 0 || cfg.RecordEvery <= 0 || cfg.SpeedKmh <= 0 {
		return nil, fmt.Errorf("trace: invalid simulation config %+v", cfg)
	}
	centre := mapCentre(g)
	out := make([]*VehicleTrace, 0, cfg.Vehicles)
	for v := 0; v < cfg.Vehicles; v++ {
		speed := cfg.SpeedKmh * (0.7 + 0.6*rng.Float64()) / 3600 // km/s
		out = append(out, simulateOne(rng, g, cfg, v, speed, centre))
	}
	return out, nil
}

func mapCentre(g *roadnet.Graph) geom.Point {
	pts := make([]geom.Point, g.NumNodes())
	for i := range pts {
		pts[i] = g.Node(roadnet.NodeID(i)).Pos
	}
	b := geom.BoundsOf(pts)
	return geom.Midpoint(b.Min, b.Max)
}

func simulateOne(rng *rand.Rand, g *roadnet.Graph, cfg SimConfig, id int, speed float64, centre geom.Point) *VehicleTrace {
	tr := &VehicleTrace{ID: id}

	// Start position biased toward the centre: rejection-sample random
	// locations, accepting with probability e^{−bias·d}.
	loc := roadnet.RandomLocation(rng, g)
	for try := 0; try < 32; try++ {
		cand := roadnet.RandomLocation(rng, g)
		d := geom.Dist(cand.Point(g), centre)
		if rng.Float64() < math.Exp(-cfg.CenterBias*d) {
			loc = cand
			break
		}
	}

	nextRecord := 0.0
	now := 0.0
	for now < cfg.Duration {
		// Emit records due before the next movement step.
		for nextRecord <= now && nextRecord < cfg.Duration {
			if rng.Float64() >= cfg.DropoutProb {
				tr.Records = append(tr.Records, Record{Time: nextRecord, Loc: loc})
			}
			nextRecord += cfg.RecordEvery
		}

		// Drive to the end of the current edge or until the next record,
		// whichever is sooner.
		remaining := loc.ToEnd
		stepTime := remaining / speed
		if now+stepTime >= nextRecord {
			drive := (nextRecord - now) * speed
			loc = roadnet.Location{Edge: loc.Edge, ToEnd: loc.ToEnd - drive}
			tr.PathDistance += drive
			now = nextRecord
			continue
		}
		tr.PathDistance += remaining
		now += stepTime

		// Turn at the connection, biased toward the centre.
		head := g.Edge(loc.Edge).To
		next := chooseEdge(rng, g, head, cfg.CenterBias, centre)
		loc = roadnet.Location{Edge: next, ToEnd: g.Edge(next).Weight}
	}
	return tr
}

func chooseEdge(rng *rand.Rand, g *roadnet.Graph, at roadnet.NodeID, bias float64, centre geom.Point) roadnet.EdgeID {
	outs := g.OutEdges(at)
	if len(outs) == 0 {
		panic("trace: dead-end connection in a strongly connected graph")
	}
	if len(outs) == 1 || bias <= 0 {
		return outs[rng.Intn(len(outs))]
	}
	weights := make([]float64, len(outs))
	total := 0.0
	for i, eid := range outs {
		e := g.Edge(eid)
		mid := geom.Midpoint(g.Node(e.From).Pos, g.Node(e.To).Pos)
		weights[i] = math.Exp(-bias * geom.Dist(mid, centre))
		total += weights[i]
	}
	u := rng.Float64() * total
	for i, w := range weights {
		u -= w
		if u <= 0 {
			return outs[i]
		}
	}
	return outs[len(outs)-1]
}

// PriorFromTraces estimates a prior distribution over intervals from
// record counts with additive smoothing alpha (in pseudo-counts per
// interval). This is the paper's per-cab f_P estimator.
func PriorFromTraces(part *discretize.Partition, traces []*VehicleTrace, alpha float64) []float64 {
	k := part.K()
	if alpha < 0 {
		alpha = 0
	}
	counts := make([]float64, k)
	total := alpha * float64(k)
	for i := range counts {
		counts[i] = alpha
	}
	for _, tr := range traces {
		for _, r := range tr.Records {
			counts[part.Locate(r.Loc)]++
			total++
		}
	}
	if total == 0 {
		return nil
	}
	for i := range counts {
		counts[i] /= total
	}
	return counts
}

// IntervalSequence converts a trace into the interval-index sequence of
// every stride-th record (the paper's footnote 4: taking one sample of
// every n builds a trajectory with report interval 7n seconds).
func IntervalSequence(part *discretize.Partition, tr *VehicleTrace, stride int) []int {
	if stride < 1 {
		stride = 1
	}
	seq := make([]int, 0, len(tr.Records)/stride+1)
	for i := 0; i < len(tr.Records); i += stride {
		seq = append(seq, part.Locate(tr.Records[i].Loc))
	}
	return seq
}

// TopByRecords returns the n traces with the most records, mirroring the
// paper's "select the 120 cabs with the highest number of records".
func TopByRecords(traces []*VehicleTrace, n int) []*VehicleTrace {
	sorted := append([]*VehicleTrace(nil), traces...)
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && len(sorted[j].Records) > len(sorted[j-1].Records); j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	if n > len(sorted) {
		n = len(sorted)
	}
	return sorted[:n]
}

// DatasetStats summarises a fleet for the paper's Fig. 9 histograms.
type DatasetStats struct {
	RecordCounts  []float64 // per vehicle
	TravelTimes   []float64 // seconds per vehicle
	PathDistances []float64 // km per vehicle
}

// Stats collects the Fig. 9 summary of a fleet.
func Stats(traces []*VehicleTrace) DatasetStats {
	s := DatasetStats{
		RecordCounts:  make([]float64, 0, len(traces)),
		TravelTimes:   make([]float64, 0, len(traces)),
		PathDistances: make([]float64, 0, len(traces)),
	}
	for _, tr := range traces {
		s.RecordCounts = append(s.RecordCounts, float64(len(tr.Records)))
		s.TravelTimes = append(s.TravelTimes, tr.Duration())
		s.PathDistances = append(s.PathDistances, tr.PathDistance)
	}
	return s
}

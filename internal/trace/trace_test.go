package trace

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/discretize"
	"repro/internal/geom"
	"repro/internal/roadnet"
)

func testGraph(t *testing.T, seed int64) *roadnet.Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	return roadnet.RomeLike(rng, roadnet.DefaultRomeLike())
}

func smallSim() SimConfig {
	return SimConfig{
		Vehicles:    20,
		Duration:    900,
		RecordEvery: 7,
		SpeedKmh:    30,
		CenterBias:  1.2,
		DropoutProb: 0.2,
	}
}

func TestSimulateValidation(t *testing.T) {
	g := testGraph(t, 1)
	rng := rand.New(rand.NewSource(2))
	if _, err := Simulate(rng, g, SimConfig{}); err == nil {
		t.Fatal("accepted zero config")
	}
}

func TestSimulateProducesSaneTraces(t *testing.T) {
	g := testGraph(t, 3)
	rng := rand.New(rand.NewSource(4))
	cfg := smallSim()
	traces, err := Simulate(rng, g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(traces) != cfg.Vehicles {
		t.Fatalf("%d traces, want %d", len(traces), cfg.Vehicles)
	}
	for _, tr := range traces {
		if len(tr.Records) == 0 {
			t.Fatalf("vehicle %d has no records", tr.ID)
		}
		maxRecords := int(cfg.Duration/cfg.RecordEvery) + 1
		if len(tr.Records) > maxRecords {
			t.Fatalf("vehicle %d has %d records, cap %d", tr.ID, len(tr.Records), maxRecords)
		}
		prev := -1.0
		for _, r := range tr.Records {
			if r.Time <= prev {
				t.Fatalf("vehicle %d records out of order", tr.ID)
			}
			prev = r.Time
			if !r.Loc.Valid(g) {
				t.Fatalf("vehicle %d has invalid location %v", tr.ID, r.Loc)
			}
		}
		if tr.PathDistance <= 0 {
			t.Fatalf("vehicle %d drove %v km", tr.ID, tr.PathDistance)
		}
		// Sanity: driven distance cannot exceed max speed × duration.
		if tr.PathDistance > cfg.SpeedKmh*1.3/3600*cfg.Duration*1.01 {
			t.Fatalf("vehicle %d drove impossibly far: %v km", tr.ID, tr.PathDistance)
		}
	}
}

func TestDropoutVariesRecordCounts(t *testing.T) {
	g := testGraph(t, 5)
	rng := rand.New(rand.NewSource(6))
	cfg := smallSim()
	traces, err := Simulate(rng, g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	first := len(traces[0].Records)
	same := true
	for _, tr := range traces[1:] {
		if len(tr.Records) != first {
			same = false
			break
		}
	}
	if same {
		t.Fatal("dropout produced identical record counts across the fleet")
	}
}

func TestCenterBiasConcentratesRecords(t *testing.T) {
	g := testGraph(t, 7)
	cfg := smallSim()
	cfg.Vehicles = 40

	centreMass := func(bias float64, seed int64) float64 {
		rng := rand.New(rand.NewSource(seed))
		c := cfg
		c.CenterBias = bias
		traces, err := Simulate(rng, g, c)
		if err != nil {
			t.Fatal(err)
		}
		centre := mapCentre(g)
		in, total := 0, 0
		for _, tr := range traces {
			for _, r := range tr.Records {
				total++
				if geom.Dist(r.Loc.Point(g), centre) < 0.6 {
					in++
				}
			}
		}
		return float64(in) / float64(total)
	}
	biased := centreMass(2.5, 8)
	unbiased := centreMass(0, 9)
	if biased <= unbiased {
		t.Fatalf("centre bias did not concentrate records: %.3f vs %.3f", biased, unbiased)
	}
}

func TestPriorFromTraces(t *testing.T) {
	g := testGraph(t, 10)
	part, err := discretize.New(g, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	traces, err := Simulate(rng, g, smallSim())
	if err != nil {
		t.Fatal(err)
	}
	prior := PriorFromTraces(part, traces, 0.5)
	sum := 0.0
	for _, p := range prior {
		if p <= 0 {
			t.Fatal("smoothed prior must be strictly positive everywhere")
		}
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("prior sums to %v", sum)
	}
}

func TestIntervalSequenceStride(t *testing.T) {
	g := testGraph(t, 12)
	part, err := discretize.New(g, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(13))
	cfg := smallSim()
	cfg.DropoutProb = 0
	traces, err := Simulate(rng, g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	tr := traces[0]
	full := IntervalSequence(part, tr, 1)
	if len(full) != len(tr.Records) {
		t.Fatalf("stride-1 sequence has %d entries, want %d", len(full), len(tr.Records))
	}
	half := IntervalSequence(part, tr, 2)
	if len(half) != (len(tr.Records)+1)/2 {
		t.Fatalf("stride-2 sequence has %d entries, want %d", len(half), (len(tr.Records)+1)/2)
	}
	for i, v := range half {
		if v != full[2*i] {
			t.Fatalf("stride-2 sequence diverges at %d", i)
		}
	}
}

func TestConsecutiveIntervalsAreNear(t *testing.T) {
	// At 7-second reporting and ≤ 39 km/h, consecutive records are at
	// most ≈ 76 m apart along the road — strong spatial correlation, the
	// premise of the HMM attack.
	g := testGraph(t, 14)
	part, err := discretize.New(g, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(15))
	cfg := smallSim()
	cfg.DropoutProb = 0
	traces, err := Simulate(rng, g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	maxStep := cfg.SpeedKmh * 1.3 / 3600 * cfg.RecordEvery
	for _, tr := range traces[:5] {
		seq := IntervalSequence(part, tr, 1)
		for i := 0; i+1 < len(seq); i++ {
			d := part.MidDistMin(seq[i], seq[i+1])
			if d > maxStep+2*0.1+1e-9 { // slack: two interval half-lengths
				t.Fatalf("consecutive intervals %v km apart, cap %v", d, maxStep)
			}
		}
	}
}

func TestTopByRecords(t *testing.T) {
	traces := []*VehicleTrace{
		{ID: 0, Records: make([]Record, 3)},
		{ID: 1, Records: make([]Record, 9)},
		{ID: 2, Records: make([]Record, 6)},
	}
	top := TopByRecords(traces, 2)
	if len(top) != 2 || top[0].ID != 1 || top[1].ID != 2 {
		t.Fatalf("TopByRecords wrong: %v, %v", top[0].ID, top[1].ID)
	}
	if got := TopByRecords(traces, 10); len(got) != 3 {
		t.Fatalf("overlong n returned %d", len(got))
	}
}

func TestStats(t *testing.T) {
	g := testGraph(t, 16)
	rng := rand.New(rand.NewSource(17))
	traces, err := Simulate(rng, g, smallSim())
	if err != nil {
		t.Fatal(err)
	}
	s := Stats(traces)
	if len(s.RecordCounts) != len(traces) || len(s.TravelTimes) != len(traces) || len(s.PathDistances) != len(traces) {
		t.Fatal("stats length mismatch")
	}
	for i := range traces {
		if s.PathDistances[i] <= 0 || s.RecordCounts[i] <= 0 {
			t.Fatalf("non-positive stats for vehicle %d", i)
		}
	}
}

// Package vlp is the public façade of the road-network
// geo-indistinguishability library — a reproduction of "Location Privacy
// Protection in Vehicle-Based Spatial Crowdsourcing via
// Geo-Indistinguishability" (Qiu & Squicciarini, ICDCS 2019 / IEEE TMC).
//
// The library obfuscates vehicle locations over a road network so that a
// spatial-crowdsourcing server can estimate travel costs accurately
// while the vehicle's true position stays (ε, r)-geo-indistinguishable
// under the shortest-path metric. The headline pipeline:
//
//	g := vlp.NewRoadNetwork()
//	a := g.AddNode(0, 0)
//	b := g.AddNode(1, 0)
//	g.AddTwoWayRoad(a, b, 0) // weight 0 = Euclidean length
//
//	mech, err := vlp.Build(g, vlp.Params{Epsilon: 5, Delta: 0.1})
//	obf := mech.Obfuscate(rng, trueLocation)
//
// Underneath, Build discretises the network into δ-intervals, assembles
// the D-VLP linear program with the paper's constraint reduction
// (Theorem 4.2) and solves it by Dantzig–Wolfe column generation
// (Section 4.3). See internal/core for the full solver surface,
// internal/planar for the 2D baseline, internal/attack for the threat
// models and internal/experiments for the paper's evaluation figures.
package vlp

import (
	"fmt"
	"io"
	"math/rand"
	"sync"

	"repro/internal/attack"
	"repro/internal/calibrate"
	"repro/internal/core"
	"repro/internal/discretize"
	"repro/internal/geom"
	"repro/internal/roadnet"
	"repro/internal/serial"
)

// RoadNetwork is a weighted directed road graph builder.
type RoadNetwork struct {
	g *roadnet.Graph
}

// NewRoadNetwork returns an empty network.
func NewRoadNetwork() *RoadNetwork {
	return &RoadNetwork{g: roadnet.NewGraph()}
}

// AddNode inserts a road connection at planar position (x, y) km and
// returns its identifier.
func (r *RoadNetwork) AddNode(x, y float64) int {
	return int(r.g.AddNode(geom.Point{X: x, Y: y}))
}

// AddRoad inserts a one-way road segment from node a to node b with the
// given travel weight in km (non-positive selects Euclidean length).
func (r *RoadNetwork) AddRoad(a, b int, weight float64) {
	r.g.AddEdge(roadnet.NodeID(a), roadnet.NodeID(b), weight)
}

// AddTwoWayRoad inserts both directions of a two-way street.
func (r *RoadNetwork) AddTwoWayRoad(a, b int, weight float64) {
	r.g.AddTwoWay(roadnet.NodeID(a), roadnet.NodeID(b), weight)
}

// Graph exposes the underlying graph for advanced use alongside the
// internal packages.
func (r *RoadNetwork) Graph() *roadnet.Graph { return r.g }

// Location is a point on the road network: the i-th directed road (in
// insertion order) at a travel distance FromStart from its starting
// connection.
type Location struct {
	Road      int
	FromStart float64
}

// Params configures Build.
type Params struct {
	// Epsilon is the geo-indistinguishability privacy parameter in 1/km
	// (required, > 0). Smaller is more private.
	Epsilon float64
	// Radius is the protection radius r in km; ≤ 0 protects all pairs.
	Radius float64
	// Delta is the discretisation interval length in km (required, > 0).
	Delta float64
	// WorkerPrior and TaskPrior are optional distributions over the
	// discretised intervals (see Mechanism.NumIntervals); nil = uniform.
	WorkerPrior, TaskPrior []float64
	// Exact solves the LP to optimality; by default the solver stops at
	// a 2% dual gap, which is far below the obfuscation noise floor.
	Exact bool
}

// Mechanism is a solved obfuscation strategy.
type Mechanism struct {
	prob *core.Problem
	mech *core.Mechanism
	res  *core.CGResult
}

// Build discretises the network and solves the D-VLP obfuscation LP.
func Build(r *RoadNetwork, p Params) (*Mechanism, error) {
	if p.Delta <= 0 {
		return nil, fmt.Errorf("vlp: Delta must be positive, got %v", p.Delta)
	}
	part, err := discretize.New(r.g, p.Delta)
	if err != nil {
		return nil, err
	}
	prob, err := core.NewProblem(part, core.Config{
		Epsilon: p.Epsilon,
		Radius:  p.Radius,
		PriorP:  p.WorkerPrior,
		PriorQ:  p.TaskPrior,
	})
	if err != nil {
		return nil, err
	}
	opts := core.CGOptions{Xi: -0.05, RelGap: 0.02}
	if p.Exact {
		opts = core.CGOptions{Xi: 0}
	}
	res, err := core.SolveCG(prob, opts)
	if err != nil {
		return nil, err
	}
	return &Mechanism{prob: prob, mech: res.Mechanism, res: res}, nil
}

// NumIntervals returns K, the number of discretised intervals; priors
// passed to Build are vectors of this length (in interval index order —
// roads in insertion order, intervals from road start to end).
func (m *Mechanism) NumIntervals() int { return m.mech.K() }

// IntervalOf returns the interval index containing a location.
func (m *Mechanism) IntervalOf(l Location) int {
	return m.prob.Part.Locate(m.toInternal(l))
}

// Obfuscate draws an obfuscated location for the true location,
// preserving the relative position within the interval (paper Step II).
func (m *Mechanism) Obfuscate(rng *rand.Rand, truth Location) Location {
	obf := m.mech.Sample(rng, m.toInternal(truth))
	return m.fromInternal(obf)
}

// Sampler is a concurrency-safe obfuscation handle: it owns a seeded RNG
// behind a mutex so any number of goroutines can draw obfuscated
// locations from one shared (immutable) mechanism. This is the sampling
// entry point the vlpserved service uses per cached mechanism.
type Sampler struct {
	m   *Mechanism
	mu  sync.Mutex
	rng *rand.Rand
}

// Sampler returns a new concurrency-safe sampler over the mechanism,
// seeded deterministically: two samplers with equal seeds over equal
// mechanisms produce identical obfuscation streams when called from a
// single goroutine.
func (m *Mechanism) Sampler(seed int64) *Sampler {
	return &Sampler{m: m, rng: rand.New(rand.NewSource(seed))}
}

// Obfuscate draws an obfuscated location for the true location. Safe for
// concurrent use.
func (s *Sampler) Obfuscate(truth Location) Location {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.m.Obfuscate(s.rng, truth)
}

// Digest returns a deterministic content digest of (network, params):
// hex-encoded SHA-256 over a canonical binary encoding of the graph
// topology and every Build parameter that shapes the solved mechanism.
// Equal inputs digest equal across processes, which makes the digest a
// sound cache key for solved mechanisms (vlpserved keys its LRU on it).
func Digest(r *RoadNetwork, p Params) string {
	spec := &serial.SolveSpec{
		Network:   serial.FromGraph(r.g),
		Delta:     p.Delta,
		Epsilon:   p.Epsilon,
		Radius:    p.Radius,
		Prior:     p.WorkerPrior,
		TaskPrior: p.TaskPrior,
		Exact:     p.Exact,
	}
	return spec.Digest()
}

// QualityLoss returns the mechanism's expected traveling-distance
// distortion (ETDD, km).
func (m *Mechanism) QualityLoss() float64 { return m.res.ETDD }

// LowerBound returns the best known lower bound on the optimal ETDD: the
// larger of the solver's dual bound (Theorem 4.4) and the closed-form
// privacy/QoS trade-off bound (Proposition 4.5).
func (m *Mechanism) LowerBound() float64 {
	b := m.res.LowerBound
	if p45 := m.prob.TradeoffLowerBound(m.prob.Eps); p45 > b {
		b = p45
	}
	return b
}

// AdversaryError returns the expected error (km) of the optimal Bayesian
// inference adversary against this mechanism — the paper's AdvError
// privacy metric (higher = more private).
func (m *Mechanism) AdversaryError() (float64, error) {
	b, err := attack.NewBayes(m.mech, m.prob.PriorP)
	if err != nil {
		return 0, err
	}
	return b.AdvError(), nil
}

// Probabilities returns a copy of the obfuscation distribution of the
// given true interval.
func (m *Mechanism) Probabilities(interval int) []float64 {
	return append([]float64(nil), m.mech.Row(interval)...)
}

// GeoIViolation returns the largest violation of the full (ε, r)-Geo-I
// constraint set (≤ 0 means exactly satisfied).
func (m *Mechanism) GeoIViolation() float64 {
	return m.prob.GeoIViolation(m.mech)
}

// Internal returns the underlying solver artifacts for advanced callers
// (attack simulation, custom evaluation).
func (m *Mechanism) Internal() (*core.Problem, *core.Mechanism, *core.CGResult) {
	return m.prob, m.mech, m.res
}

// Save writes the mechanism (with its network and discretisation) as
// JSON, loadable by Load and auditable by cmd/vlpattack.
func (m *Mechanism) Save(w io.Writer) error {
	return serial.WriteJSON(w, serial.FromMechanism(
		m.mech, m.prob.Part.Delta, m.prob.Eps, m.prob.Radius, m.res.ETDD, m.res.LowerBound))
}

// CalibrateEpsilon searches for the privacy parameter whose optimal
// mechanism yields (approximately) the requested adversary error in km —
// the operational way to pick ε. It solves several mechanisms; expect
// seconds to minutes depending on network size.
func CalibrateEpsilon(r *RoadNetwork, delta, targetAdvError float64) (*Mechanism, error) {
	part, err := discretize.New(r.g, delta)
	if err != nil {
		return nil, err
	}
	res, err := calibrate.Epsilon(part, core.Config{Epsilon: 1}, targetAdvError, calibrate.Options{})
	if err != nil {
		return nil, err
	}
	prob, err := core.NewProblem(part, core.Config{Epsilon: res.Epsilon})
	if err != nil {
		return nil, err
	}
	cg := &core.CGResult{Mechanism: res.Mechanism, ETDD: res.ETDD}
	return &Mechanism{prob: prob, mech: res.Mechanism, res: cg}, nil
}

// Load reads a mechanism saved by Save (or produced by cmd/vlpsolve).
// The loaded mechanism supports Obfuscate, Probabilities and
// GeoIViolation; quality and adversary metrics are recomputed against a
// uniform prior since the original priors are not serialised.
func Load(r io.Reader) (*Mechanism, error) {
	var sm serial.Mechanism
	if err := serial.ReadJSON(r, &sm); err != nil {
		return nil, err
	}
	mech, err := sm.ToMechanism()
	if err != nil {
		return nil, err
	}
	prob, err := core.NewProblem(mech.Part, core.Config{
		Epsilon: sm.Epsilon,
		Radius:  sm.Radius,
	})
	if err != nil {
		return nil, err
	}
	res := &core.CGResult{Mechanism: mech, ETDD: sm.ETDD, LowerBound: sm.Bound}
	return &Mechanism{prob: prob, mech: mech, res: res}, nil
}

func (m *Mechanism) toInternal(l Location) roadnet.Location {
	return roadnet.LocationFromStart(m.prob.Part.G, roadnet.EdgeID(l.Road), l.FromStart)
}

func (m *Mechanism) fromInternal(l roadnet.Location) Location {
	return Location{Road: int(l.Edge), FromStart: l.FromStart(m.prob.Part.G)}
}

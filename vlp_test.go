package vlp

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
)

// smallNetwork builds a 2×2 two-way grid through the public API.
func smallNetwork() *RoadNetwork {
	r := NewRoadNetwork()
	a := r.AddNode(0, 0)
	b := r.AddNode(0.4, 0)
	c := r.AddNode(0, 0.4)
	d := r.AddNode(0.4, 0.4)
	r.AddTwoWayRoad(a, b, 0)
	r.AddTwoWayRoad(a, c, 0)
	r.AddTwoWayRoad(b, d, 0)
	r.AddRoad(c, d, 0) // one one-way street
	r.AddRoad(d, c, 0.55)
	return r
}

func TestBuildValidation(t *testing.T) {
	r := smallNetwork()
	if _, err := Build(r, Params{Epsilon: 5}); err == nil {
		t.Fatal("accepted zero Delta")
	}
	if _, err := Build(r, Params{Delta: 0.2}); err == nil {
		t.Fatal("accepted zero Epsilon")
	}
}

func TestBuildAndObfuscate(t *testing.T) {
	r := smallNetwork()
	m, err := Build(r, Params{Epsilon: 4, Delta: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if m.NumIntervals() <= 0 {
		t.Fatal("no intervals")
	}
	if v := m.GeoIViolation(); v > 1e-6 {
		t.Fatalf("mechanism violates Geo-I by %v", v)
	}
	if m.QualityLoss() < m.LowerBound()-1e-9 {
		t.Fatalf("quality loss %v below its lower bound %v", m.QualityLoss(), m.LowerBound())
	}

	rng := rand.New(rand.NewSource(1))
	truth := Location{Road: 0, FromStart: 0.1}
	seen := map[int]bool{}
	for i := 0; i < 200; i++ {
		obf := m.Obfuscate(rng, truth)
		if obf.Road < 0 || obf.FromStart < 0 {
			t.Fatalf("invalid obfuscated location %+v", obf)
		}
		seen[m.IntervalOf(obf)] = true
	}
	if len(seen) < 2 {
		t.Fatal("obfuscation is deterministic; expected randomisation")
	}
}

func TestProbabilitiesRowStochastic(t *testing.T) {
	m, err := Build(smallNetwork(), Params{Epsilon: 4, Delta: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < m.NumIntervals(); i++ {
		row := m.Probabilities(i)
		sum := 0.0
		for _, p := range row {
			if p < 0 {
				t.Fatalf("negative probability in row %d", i)
			}
			sum += p
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("row %d sums to %v", i, sum)
		}
	}
}

func TestAdversaryError(t *testing.T) {
	strict, err := Build(smallNetwork(), Params{Epsilon: 1, Delta: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	loose, err := Build(smallNetwork(), Params{Epsilon: 10, Delta: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	sa, err := strict.AdversaryError()
	if err != nil {
		t.Fatal(err)
	}
	la, err := loose.AdversaryError()
	if err != nil {
		t.Fatal(err)
	}
	if sa <= la {
		t.Fatalf("stronger privacy (ε=1) must yield higher AdvError: %v vs %v", sa, la)
	}
}

func TestCustomPriors(t *testing.T) {
	r := smallNetwork()
	probe, err := Build(r, Params{Epsilon: 4, Delta: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	k := probe.NumIntervals()
	prior := make([]float64, k)
	for i := range prior {
		prior[i] = 1 / float64(k)
	}
	if _, err := Build(r, Params{Epsilon: 4, Delta: 0.2, WorkerPrior: prior, TaskPrior: prior}); err != nil {
		t.Fatal(err)
	}
	bad := make([]float64, k)
	bad[0] = 2
	if _, err := Build(r, Params{Epsilon: 4, Delta: 0.2, WorkerPrior: bad}); err == nil {
		t.Fatal("accepted non-normalised prior")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	m, err := Build(smallNetwork(), Params{Epsilon: 4, Delta: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	m2, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if m2.NumIntervals() != m.NumIntervals() {
		t.Fatalf("K changed: %d vs %d", m2.NumIntervals(), m.NumIntervals())
	}
	if math.Abs(m2.QualityLoss()-m.QualityLoss()) > 1e-12 {
		t.Fatal("recorded quality loss changed")
	}
	for i := 0; i < m.NumIntervals(); i++ {
		a, b := m.Probabilities(i), m2.Probabilities(i)
		for l := range a {
			if math.Abs(a[l]-b[l]) > 1e-12 {
				t.Fatalf("row %d diverged after round trip", i)
			}
		}
	}
	if v := m2.GeoIViolation(); v > 1e-6 {
		t.Fatalf("loaded mechanism violates Geo-I by %v", v)
	}
	rng := rand.New(rand.NewSource(2))
	obf := m2.Obfuscate(rng, Location{Road: 0, FromStart: 0.1})
	if obf.Road < 0 {
		t.Fatal("loaded mechanism cannot obfuscate")
	}
}

func TestCalibrateEpsilonFacade(t *testing.T) {
	m, err := CalibrateEpsilon(smallNetwork(), 0.3, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	adv, err := m.AdversaryError()
	if err != nil {
		t.Fatal(err)
	}
	if adv <= 0 {
		t.Fatalf("calibrated mechanism has zero adversary error")
	}
	if v := m.GeoIViolation(); v > 1e-6 {
		t.Fatalf("calibrated mechanism violates Geo-I by %v", v)
	}
}
